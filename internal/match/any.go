package match

import (
	"fmt"
	"sync/atomic"

	"streamsum/internal/archive"
	"streamsum/internal/geom"
	"streamsum/internal/par"
	"streamsum/internal/sgs"
)

// Any reports, for each target, whether src holds at least one entry
// within q.Threshold — the existence form of Run, evaluated for a whole
// batch of targets in one filter-and-refine pass. The evolution-driven
// archiver uses it to novelty-test a completed window's summaries with
// one pass over the base instead of one full query per summary.
//
// Both phases share a single parallel fan-out across Query.Workers: the
// filter phase probes every (target, shard) combination, and the refine
// phase evaluates every surviving (target, candidate) pair, short-
// circuiting a target's remaining pairs once one match is found. The
// returned flags are byte-identical at every worker count (existence is
// order-independent); q.Target and q.Limit are ignored.
func Any(src Source, targets []*sgs.Summary, q Query) ([]bool, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	for i, t := range targets {
		if t == nil || t.NumCells() == 0 {
			return nil, fmt.Errorf("match: empty target %d", i)
		}
	}
	if q.Threshold < 0 || q.Threshold > 1 {
		return nil, fmt.Errorf("match: threshold %g out of [0,1]", q.Threshold)
	}
	w := EqualWeights()
	if q.Weights != nil {
		w = *q.Weights
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	budget := q.AlignBudget
	if budget <= 0 {
		budget = DefaultAlignBudget
	}

	feats := make([][4]float64, len(targets))
	mbrs := make([]geom.MBR, len(targets))
	los := make([][4]float64, len(targets))
	his := make([][4]float64, len(targets))
	for i, t := range targets {
		feats[i] = t.Features().Vector()
		mbrs[i] = t.MBR()
		los[i], his[i] = FeatureRanges(feats[i], w, q.Threshold)
	}

	// --- Phase 1: filter — every (target, shard) probe is one task --------
	// The exact cluster-level feature gate runs inside the probe (fused
	// filter; see filterOne), so only surviving pairs ever materialize.
	shards := filterShards(src)
	cands := make([][]*archive.Entry, len(targets)*len(shards))
	par.ForEach(q.Workers, len(cands), func(k int) {
		ti, si := k/len(shards), k%len(shards)
		gate := func(v [4]float64) bool {
			return FeatureDistance(feats[ti], v, w) <= q.Threshold
		}
		cands[k], _ = filterOne(shards[si], gate, w, mbrs[ti], los[ti], his[ti])
	})

	// Flatten the surviving pairs.
	type pair struct {
		ti int
		e  *archive.Entry
	}
	var pairs []pair
	for k, part := range cands {
		ti := k / len(shards)
		for _, e := range part {
			pairs = append(pairs, pair{ti, e})
		}
	}

	// --- Phase 2: refine — all pairs share one fan-out --------------------
	// found is monotonic (false -> true), so racing workers can only skip
	// work, never change the outcome.
	found := make([]atomic.Bool, len(targets))
	errs := make([]error, len(pairs))
	par.ForEach(q.Workers, len(pairs), func(i int) {
		p := pairs[i]
		if found[p.ti].Load() {
			return
		}
		sum, err := p.e.LoadSummary()
		if err != nil {
			errs[i] = err
			return
		}
		if RefineDistance(targets[p.ti], sum, w, budget) <= q.Threshold {
			found[p.ti].Store(true)
		}
	})
	out := make([]bool, len(targets))
	for i := range out {
		out[i] = found[i].Load()
	}
	for i, err := range errs {
		// A load failure only matters if it could have flipped a flag.
		if err != nil && !out[pairs[i].ti] {
			return nil, err
		}
	}
	return out, nil
}
