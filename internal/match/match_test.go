package match

import (
	"math"
	"math/rand"
	"testing"

	"streamsum/internal/archive"
	"streamsum/internal/dbscan"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/sgs"
)

const thetaR = 0.5

func geoOf(t *testing.T) *grid.Geometry {
	t.Helper()
	g, err := grid.NewGeometry(2, thetaR)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// summarize builds the SGS of the largest cluster in a point cloud.
func summarize(t *testing.T, pts []geom.Point, id int64) *sgs.Summary {
	t.Helper()
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	res, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: thetaR, ThetaC: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("fixture produced no cluster")
	}
	best := 0
	for i, c := range res.Clusters {
		if len(c.Members) > len(res.Clusters[best].Members) {
			best = i
		}
	}
	var cpts []geom.Point
	var isCore []bool
	for _, m := range res.Clusters[best].Members {
		cpts = append(cpts, pts[m])
		isCore = append(isCore, res.IsCore[m])
	}
	s, err := sgs.FromCluster(geoOf(t), cpts, isCore, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func blob(rng *rand.Rand, n int, cx, cy, spread float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread}
	}
	return pts
}

func elongated(rng *rand.Rand, n int, cx, cy float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{cx + rng.Float64()*8, cy + rng.NormFloat64()*0.3}
	}
	return pts
}

func TestWeightsValidate(t *testing.T) {
	if err := EqualWeights().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Weights{Volume: 0.5, Status: 0.6}
	if bad.Validate() == nil {
		t.Error("non-unit weights accepted")
	}
	neg := Weights{Volume: -0.5, Status: 1.5}
	if neg.Validate() == nil {
		t.Error("negative weight accepted")
	}
}

func TestRelDist(t *testing.T) {
	cases := []struct {
		x, f, want float64
	}{
		{20, 20, 0},
		{14, 20, (20.0 - 14) / 14},
		{30, 20, 0.5},
		{0, 0, 0},
		{0, 5, 1},
		{100, 1, 1}, // clamped
	}
	for _, c := range cases {
		if got := relDist(c.x, c.f); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("relDist(%g,%g) = %g, want %g", c.x, c.f, got, c.want)
		}
	}
}

func TestFeatureRangesPaperExample(t *testing.T) {
	// §7.2: volume 20, weight 0.4, threshold 0.2 → candidates must have
	// volume in [14, 30] (bound = 0.5).
	w := Weights{Volume: 0.4, Status: 0.2, Density: 0.2, Connectivity: 0.2}
	lo, hi := FeatureRanges([4]float64{20, 10, 1, 1}, w, 0.2)
	if math.Abs(lo[0]-20.0/1.5) > 1e-9 || math.Abs(hi[0]-30) > 1e-9 {
		t.Errorf("volume range = [%g, %g], want [13.33, 30]", lo[0], hi[0])
	}
	// ceil(13.33) = 14 integers, matching the paper's statement.
	if math.Ceil(lo[0]) != 14 {
		t.Errorf("integer lower bound %g, want 14", math.Ceil(lo[0]))
	}
	// Zero-weight dimension is unbounded.
	w2 := Weights{Volume: 1}
	lo2, hi2 := FeatureRanges([4]float64{20, 10, 1, 1}, w2, 0.2)
	if !math.IsInf(hi2[1], 1) || lo2[1] != 0 {
		t.Error("zero-weight dimension should be unbounded")
	}
	// bound >= 1 → unbounded.
	lo3, hi3 := FeatureRanges([4]float64{20, 10, 1, 1}, EqualWeights(), 0.3)
	if !math.IsInf(hi3[0], 1) || lo3[0] != 0 {
		t.Error("bound >= 1 should be unbounded")
	}
}

func TestCellDistanceIdentityAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := summarize(t, blob(rng, 200, 0, 0, 0.8), 0)
	if d := CellDistance(s, s, zeroAlign(2)); d != 0 {
		t.Errorf("self distance = %g", d)
	}
	s2 := summarize(t, blob(rng, 200, 30, 30, 0.8), 1)
	d := CellDistance(s, s2, zeroAlign(2))
	if d != 1 {
		t.Errorf("disjoint unaligned distance = %g, want 1", d)
	}
	var empty sgs.Summary
	if CellDistance(&empty, &empty, zeroAlign(2)) != 0 {
		t.Error("empty-empty should be 0")
	}
	if CellDistance(s, &empty, zeroAlign(2)) != 1 {
		t.Error("empty-nonempty should be 1")
	}
}

func TestBestAlignmentFindsShiftedTwin(t *testing.T) {
	// The same cluster translated far away: position-insensitive matching
	// must find a near-zero distance via alignment.
	rng := rand.New(rand.NewSource(2))
	base := blob(rng, 300, 0, 0, 0.9)
	shift := geom.Point{37.25, -12.5}
	moved := make([]geom.Point, len(base))
	for i, p := range base {
		moved[i] = p.Add(shift)
	}
	a := summarize(t, base, 0)
	b := summarize(t, moved, 1)
	d, _ := BestAlignment(a, b, 128)
	// Cell quantization means the shifted copy lands in different relative
	// cell positions, so the distance is small but not zero.
	if d > 0.55 {
		t.Errorf("aligned distance = %g, want small", d)
	}
	// Identity alignment would be hopeless.
	if id := CellDistance(a, b, zeroAlign(2)); id != 1 {
		t.Errorf("identity alignment distance = %g, want 1", id)
	}
	// A perfectly cell-aligned translation must give ~0.
	aligned := make([]geom.Point, len(base))
	side := geoOf(t).Side()
	for i, p := range base {
		aligned[i] = p.Add(geom.Point{10 * side, 4 * side})
	}
	c := summarize(t, aligned, 2)
	d2, _ := BestAlignment(a, c, 128)
	if d2 > 1e-9 {
		t.Errorf("cell-aligned twin distance = %g, want 0", d2)
	}
}

func TestBestAlignmentBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := summarize(t, blob(rng, 200, 0, 0, 0.8), 0)
	b := summarize(t, blob(rng, 200, 5, 5, 0.8), 1)
	dBig, _ := BestAlignment(a, b, 512)
	dSmall, _ := BestAlignment(a, b, 1)
	if dBig > dSmall+1e-12 {
		t.Errorf("larger budget found worse alignment: %g vs %g", dBig, dSmall)
	}
}

// buildBase archives n random clusters and returns the base plus the
// summaries.
func buildBase(t *testing.T, n int, seed int64) (*archive.Base, []*sgs.Summary) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, err := archive.New(archive.Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sums []*sgs.Summary
	for i := 0; i < n; i++ {
		var pts []geom.Point
		if i%3 == 0 {
			pts = elongated(rng, 250, rng.Float64()*100, rng.Float64()*100)
		} else {
			pts = blob(rng, 150+rng.Intn(150), rng.Float64()*100, rng.Float64()*100, 0.5+rng.Float64())
		}
		s := summarize(t, pts, int64(i))
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatal(err)
		}
		sums = append(sums, s)
	}
	return b, sums
}

func TestRunFindsArchivedSelf(t *testing.T) {
	b, sums := buildBase(t, 25, 4)
	for i := 0; i < 5; i++ {
		matches, st, err := Run(b, Query{Target: sums[i], Threshold: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) == 0 {
			t.Fatalf("target %d: no matches for its own archived copy", i)
		}
		if matches[0].Distance > 1e-9 {
			t.Fatalf("target %d: self distance %g", i, matches[0].Distance)
		}
		if st.IndexCandidates == 0 || st.Refined == 0 {
			t.Fatalf("stats empty: %+v", st)
		}
		if st.Refined > st.IndexCandidates {
			t.Fatalf("refined %d > candidates %d", st.Refined, st.IndexCandidates)
		}
	}
}

func TestRunPositionSensitive(t *testing.T) {
	b, sums := buildBase(t, 20, 5)
	w := EqualWeights()
	w.PositionSensitive = true
	matches, _, err := Run(b, Query{Target: sums[0], Threshold: 0.3, Weights: &w})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		// Every match must overlap the target (Dist_location = 0).
		if !m.Entry.MBR.Intersects(sums[0].MBR()) {
			t.Fatal("position-sensitive match does not overlap target")
		}
		if m.Distance <= 1e-9 {
			found = true
		}
	}
	if !found {
		t.Fatal("archived self not found position-sensitively")
	}
}

func TestRunLimitAndOrdering(t *testing.T) {
	b, sums := buildBase(t, 30, 6)
	matches, _, err := Run(b, Query{Target: sums[0], Threshold: 1, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) > 3 {
		t.Fatalf("limit ignored: %d matches", len(matches))
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].Distance < matches[i-1].Distance {
			t.Fatal("matches not sorted")
		}
	}
}

func TestRunValidation(t *testing.T) {
	b, sums := buildBase(t, 3, 7)
	if _, _, err := Run(b, Query{Target: nil, Threshold: 0.2}); err == nil {
		t.Error("nil target accepted")
	}
	if _, _, err := Run(b, Query{Target: sums[0], Threshold: 2}); err == nil {
		t.Error("threshold > 1 accepted")
	}
	badW := Weights{Volume: 2}
	if _, _, err := Run(b, Query{Target: sums[0], Threshold: 0.2, Weights: &badW}); err == nil {
		t.Error("bad weights accepted")
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	// Any archived cluster whose cluster-level feature distance is within
	// the threshold must be among the index candidates (the filter phase
	// uses necessary conditions only).
	b, sums := buildBase(t, 40, 8)
	w := EqualWeights()
	for _, q := range sums[:8] {
		qf := q.Features().Vector()
		lo, hi := FeatureRanges(qf, w, 0.15)
		inIndex := make(map[int64]bool)
		b.SearchFeatures(lo, hi, func(e *archive.Entry) bool {
			inIndex[e.ID] = true
			return true
		})
		b.All(func(e *archive.Entry) bool {
			fd := FeatureDistance(qf, e.Features.Vector(), w)
			if fd <= 0.15 && !inIndex[e.ID] {
				t.Fatalf("cluster %d (feature dist %g) missed by filter", e.ID, fd)
			}
			return true
		})
	}
}

func TestMatchingSeparatesShapes(t *testing.T) {
	// A blob target should match archived blobs better than elongated
	// clusters of similar size — the shape discrimination CRD cannot do.
	rng := rand.New(rand.NewSource(9))
	b, err := archive.New(archive.Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	blobID, _, err := b.Put(summarize(t, blob(rng, 250, 10, 10, 0.8), 0))
	if err != nil {
		t.Fatal(err)
	}
	elongID, _, err := b.Put(summarize(t, elongated(rng, 250, 60, 60), 1))
	if err != nil {
		t.Fatal(err)
	}
	target := summarize(t, blob(rng, 250, 90, 90, 0.8), 2)
	matches, _, err := Run(b, Query{Target: target, Threshold: 1, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	dist := map[int64]float64{}
	for _, m := range matches {
		dist[m.ID] = m.Distance
	}
	db, okB := dist[blobID]
	de, okE := dist[elongID]
	if okB && okE && db >= de {
		t.Errorf("blob target closer to elongated (%g) than to blob (%g)", de, db)
	}
	if !okB {
		t.Error("similar blob not matched at threshold 1")
	}
}
