package match

import (
	"fmt"
	"math"
	"sort"
	"time"

	"streamsum/internal/archive"
	"streamsum/internal/geom"
	"streamsum/internal/par"
	"streamsum/internal/sgs"
	"streamsum/internal/trace"
)

// Source is the read view a matching query executes against. Both
// *archive.Base (every index probe pins a fresh snapshot) and
// *archive.Snapshot (one point-in-time view across the whole query)
// satisfy it; pass a snapshot when the query must not observe concurrent
// archiving.
type Source interface {
	SearchLocation(q geom.MBR, visit func(*archive.Entry) bool)
	SearchFeatures(lo, hi [4]float64, visit func(*archive.Entry) bool)
}

// ShardedSource is a Source that can split itself into independently
// searchable filter shards (archive.Snapshot: the memory tier plus one
// shard per disk segment). When a source implements it, the filter
// phase probes the shards in parallel across Query.Workers instead of
// sequentially — shards are disjoint, so the candidate set (and
// therefore the result) is identical either way.
type ShardedSource interface {
	FilterShards() []archive.Searcher
}

// DefaultAlignBudget is the alignment-search budget used when
// Query.AlignBudget is unset.
const DefaultAlignBudget = 64

// Weights configures the distance metric. The four feature weights must be
// non-negative and sum to 1.
type Weights struct {
	PositionSensitive bool
	Volume            float64
	Status            float64
	Density           float64
	Connectivity      float64
}

// EqualWeights gives every non-locational feature weight 0.25 (the setting
// used throughout the paper's experiments), position-insensitive.
func EqualWeights() Weights {
	return Weights{Volume: 0.25, Status: 0.25, Density: 0.25, Connectivity: 0.25}
}

// Validate checks the weight vector.
func (w Weights) Validate() error {
	for _, v := range []float64{w.Volume, w.Status, w.Density, w.Connectivity} {
		if v < 0 {
			return fmt.Errorf("match: negative weight %g", v)
		}
	}
	sum := w.Volume + w.Status + w.Density + w.Connectivity
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("match: weights sum to %g, want 1", sum)
	}
	return nil
}

// Query is one cluster matching query (Figure 3).
type Query struct {
	// Target is the to-be-matched cluster's SGS. Its resolution should
	// match the archive's (compress it first if needed).
	Target *sgs.Summary
	// Threshold is the maximum distance for a match (sim_threshold).
	Threshold float64
	// Weights configures the metric; zero value means EqualWeights.
	Weights *Weights
	// Limit, when positive, returns only the closest Limit matches
	// (top-k); the threshold still applies.
	Limit int
	// AlignBudget bounds the number of alignments evaluated by the anytime
	// search in the position-insensitive refine phase (default 64).
	AlignBudget int
	// Workers bounds the refine phase's parallel fan-out across
	// candidates: <= 0 means one worker per available CPU, 1 forces the
	// fully sequential pipeline. Results are byte-identical at every
	// setting.
	Workers int
	// Trace, when non-nil, receives the query's span tree: filter /
	// refine / order phase spans with wall times, per-shard child spans
	// under filter (segment label, format, zone admission), and pruning
	// attribution (segment probe/skip counts, cache hits vs disk loads)
	// as span attributes. Run records into the trace but neither
	// finishes nor discards it — the caller owns its lifetime. Tracing
	// never changes the result; it lives outside Stats so the
	// deterministic statistics stay exactly comparable across runs.
	Trace *trace.Trace
}

// Match is one result of a matching query.
type Match struct {
	ID       int64
	Distance float64
	Entry    *archive.Entry
}

// Stats reports filter-and-refine effectiveness: how many filter shards
// were probed, how many candidates the indexes returned and how many
// survived to the grid-cell-level match (the paper reports ~6% reaching
// the grid level, §8.2).
type Stats struct {
	FilterShards    int
	IndexCandidates int
	Refined         int
}

// filterShards resolves the source into its filter shards: one per tier
// segment for a ShardedSource, the source itself otherwise.
func filterShards(src Source) []archive.Searcher {
	if ss, ok := src.(ShardedSource); ok {
		if shards := ss.FilterShards(); len(shards) > 0 {
			return shards
		}
	}
	return []archive.Searcher{src}
}

// filterOne probes one shard for the query's candidates, applying the
// exact cluster-level gate during the probe, and returns the gate
// survivors plus the raw index-candidate count. Shards that implement
// archive.GatedSearcher (snapshot tiers) run the gate below the index —
// a disk shard's columnar scan rejects candidates without materializing
// an Entry; other shards get the same gate applied around a plain probe.
func filterOne(sh archive.Searcher, gate func([4]float64) bool, w Weights, targetMBR geom.MBR, lo, hi [4]float64) ([]*archive.Entry, int) {
	var out []*archive.Entry
	visit := func(e *archive.Entry) bool {
		out = append(out, e)
		return true
	}
	if gs, ok := sh.(archive.GatedSearcher); ok {
		var probed int
		if w.PositionSensitive {
			// Non-overlapping clusters have Dist_location = 1 ≥ any
			// threshold < 1, so the overlap probe is exact for the
			// location term.
			probed = gs.GatedSearchLocation(targetMBR, gate, visit)
		} else {
			probed = gs.GatedSearchFeatures(lo, hi, gate, visit)
		}
		return out, probed
	}
	probed := 0
	outer := func(e *archive.Entry) bool {
		probed++
		if gate(e.Features.Vector()) {
			out = append(out, e)
		}
		return true
	}
	if w.PositionSensitive {
		sh.SearchLocation(targetMBR, outer)
	} else {
		sh.SearchFeatures(lo, hi, outer)
	}
	return out, probed
}

// RefineDistance is the grid-cell-level distance the refine phase
// assigns a (target, candidate) pair: the fixed zero alignment under a
// position-sensitive metric, the anytime alignment search otherwise.
func RefineDistance(target, cand *sgs.Summary, w Weights, budget int) float64 {
	if w.PositionSensitive {
		return CellDistance(target, cand, zeroAlign(target.Dim))
	}
	d, _ := BestAlignment(target, cand, budget)
	return d
}

// Run executes the query against src and returns matches sorted by
// ascending distance. Both the filter phase (one index probe per shard
// of a ShardedSource) and the refine phase (one grid-cell-level match
// per candidate) fan out across Query.Workers goroutines; results are
// byte-identical at every worker count and every shard layout.
func Run(src Source, q Query) ([]Match, Stats, error) {
	var st Stats
	if q.Target == nil || q.Target.NumCells() == 0 {
		return nil, st, fmt.Errorf("match: empty target")
	}
	if q.Threshold < 0 || q.Threshold > 1 {
		return nil, st, fmt.Errorf("match: threshold %g out of [0,1]", q.Threshold)
	}
	w := EqualWeights()
	if q.Weights != nil {
		w = *q.Weights
	}
	if err := w.Validate(); err != nil {
		return nil, st, err
	}
	budget := q.AlignBudget
	if budget <= 0 {
		budget = DefaultAlignBudget
	}

	targetFeat := q.Target.Features().Vector()
	targetMBR := q.Target.MBR()
	lo, hi := FeatureRanges(targetFeat, w, q.Threshold)

	// --- Phase 1: filter — parallel gated index probes across shards ------
	// Shards are disjoint and independently searchable (the memory tier
	// plus one per disk segment); each task probes one shard into its own
	// slot, applying the exact cluster-level feature distance as a gate
	// during the probe (fused filter: on columnar disk shards the range
	// test and the gate run off one sequential scan, and only survivors
	// materialize an Entry). Survivors are then merged in id order so
	// every later phase is independent of the shard layout and probe
	// timing; the reported candidate counts are gate-independent, so the
	// fused path's statistics equal the probe-then-gate path's.
	gate := func(v [4]float64) bool {
		return FeatureDistance(targetFeat, v, w) <= q.Threshold
	}
	metricQueries.Inc()
	tr := q.Trace
	filterSpan := tr.Start("filter")
	filterStart := time.Now()
	shards := filterShards(src)
	st.FilterShards = len(shards)
	// Zone admission per shard (-1 no zone, 0 skipped, 1 probed), only
	// resolved when tracing: these re-run the zone tests the disk shards'
	// own searches apply, so the trace can say which segments the query
	// actually scanned. The checks are probe-free and do not change what
	// filterOne does.
	var zone []int8
	if tr != nil {
		zone = make([]int8, len(shards))
		segProbed, segSkipped := 0, 0
		for i, sh := range shards {
			zone[i] = -1
			zs, ok := sh.(archive.ZoneSearcher)
			if !ok {
				continue
			}
			admitted := zs.ZoneIntersectsFeatures(lo, hi)
			if w.PositionSensitive {
				admitted = zs.ZoneIntersectsLocation(targetMBR)
			}
			if admitted {
				zone[i] = 1
				segProbed++
			} else {
				zone[i] = 0
				segSkipped++
			}
		}
		filterSpan.SetInt("segments_probed", int64(segProbed))
		filterSpan.SetInt("segments_skipped", int64(segSkipped))
	}
	perShard := make([][]*archive.Entry, len(shards))
	probed := make([]int, len(shards))
	par.ForEach(q.Workers, len(shards), func(i int) {
		if tr == nil {
			perShard[i], probed[i] = filterOne(shards[i], gate, w, targetMBR, lo, hi)
			return
		}
		sp := filterSpan.Child("shard")
		if si, ok := shards[i].(archive.ShardInfo); ok {
			label, format := si.ShardInfo()
			sp.SetStr("segment", label)
			if format > 0 {
				sp.SetInt("format", int64(format))
			}
		}
		if zone[i] >= 0 {
			sp.SetBool("zone_skip", zone[i] == 0)
		}
		perShard[i], probed[i] = filterOne(shards[i], gate, w, targetMBR, lo, hi)
		sp.SetInt("candidates", int64(probed[i]))
		sp.SetInt("kept", int64(len(perShard[i])))
		sp.End()
	})
	var refine []*archive.Entry
	for i, part := range perShard {
		refine = append(refine, part...)
		st.IndexCandidates += probed[i]
	}
	sort.Slice(refine, func(i, j int) bool { return refine[i].ID < refine[j].ID })
	st.Refined = len(refine)
	filterDur := time.Since(filterStart)
	metricFilterSeconds.Observe(filterDur)
	metricCandidates.Add(uint64(st.IndexCandidates))
	metricRefined.Add(uint64(st.Refined))
	filterSpan.SetInt("shards", int64(st.FilterShards))
	filterSpan.SetInt("candidates", int64(st.IndexCandidates))
	filterSpan.End()

	// --- Phase 2: refine — parallel grid-cell-level cluster match ---------
	// Candidates are independent: each worker reads the shared immutable
	// summaries (loading disk-resident ones lazily) and writes only its
	// own slots.
	refineSpan := tr.Start("refine")
	refineStart := time.Now()
	dists := make([]float64, len(refine))
	sums := make([]*sgs.Summary, len(refine))
	errs := make([]error, len(refine))
	hits := make([]bool, len(refine))
	par.ForEach(q.Workers, len(refine), func(i int) {
		sum, hit, err := refine[i].LoadSummaryTracked()
		if err != nil {
			errs[i] = err
			return
		}
		sums[i] = sum
		hits[i] = hit
		dists[i] = RefineDistance(q.Target, sum, w, budget)
	})
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	refineDur := time.Since(refineStart)
	metricRefineSeconds.Observe(refineDur)
	if tr != nil {
		cacheHits, diskLoads := 0, 0
		for i, e := range refine {
			if e.Summary != nil {
				continue // memory tier: no load happened
			}
			if hits[i] {
				cacheHits++
			} else {
				diskLoads++
			}
		}
		refineSpan.SetInt("refined", int64(st.Refined))
		refineSpan.SetInt("cache_hits", int64(cacheHits))
		refineSpan.SetInt("disk_loads", int64(diskLoads))
	}
	refineSpan.End()

	// --- Phase 3: order — threshold, sort, top-k --------------------------
	orderSpan := tr.Start("order")
	orderStart := time.Now()
	var matches []Match
	for i, e := range refine {
		if dists[i] <= q.Threshold {
			// Results carry materialized summaries even for disk-resident
			// candidates (the refine phase read them anyway).
			matches = append(matches, Match{ID: e.ID, Distance: dists[i], Entry: e.WithSummary(sums[i])})
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Distance != matches[j].Distance {
			return matches[i].Distance < matches[j].Distance
		}
		return matches[i].ID < matches[j].ID
	})
	if q.Limit > 0 && len(matches) > q.Limit {
		matches = matches[:q.Limit]
	}
	orderDur := time.Since(orderStart)
	metricOrderSeconds.Observe(orderDur)
	orderSpan.SetInt("matches", int64(len(matches)))
	orderSpan.End()
	return matches, st, nil
}

// FeatureDistance is the cluster-level metric Σ wi·di with
// di = |x−f|/min(x,f) clamped to [0,1] (the location term is handled by
// the caller's index probe).
func FeatureDistance(a, b [4]float64, w Weights) float64 {
	ws := [4]float64{w.Volume, w.Status, w.Density, w.Connectivity}
	var sum float64
	for d := 0; d < 4; d++ {
		sum += ws[d] * relDist(a[d], b[d])
	}
	return sum
}

// relDist is the paper's relative feature distance: |x−f| / min(x,f),
// clamped to [0,1]. Zero features match only themselves.
func relDist(x, f float64) float64 {
	if x == f {
		return 0
	}
	m := math.Min(x, f)
	if m <= 0 {
		return 1
	}
	d := math.Abs(x-f) / m
	if d > 1 {
		return 1
	}
	return d
}

// FeatureRanges inverts the metric: the candidate search range per feature
// dimension such that any cluster outside it necessarily exceeds the
// threshold (the §7.2 example: volume 20, weight 0.4, threshold 0.2 →
// range [14, 30]). A zero-weight dimension is unbounded.
func FeatureRanges(f [4]float64, w Weights, threshold float64) (lo, hi [4]float64) {
	ws := [4]float64{w.Volume, w.Status, w.Density, w.Connectivity}
	for d := 0; d < 4; d++ {
		if ws[d] == 0 {
			lo[d], hi[d] = 0, math.Inf(1)
			continue
		}
		bound := threshold / ws[d]
		if bound >= 1 {
			// A full-range mismatch on this feature alone cannot be
			// excluded; the dimension is effectively unbounded.
			lo[d], hi[d] = 0, math.Inf(1)
			continue
		}
		lo[d] = f[d] / (1 + bound)
		hi[d] = f[d] * (1 + bound)
	}
	return lo, hi
}
