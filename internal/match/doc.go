// Package match implements the Pattern Analyzer (§7.2): execution of
// cluster matching queries (Figure 3) against the pattern base.
//
// The distance metric is the paper's customizable form
//
//	Dist(Ca, Cb) = ps·Dist_location + Σ wi·Dist_nlf_i(Ca, Cb)
//
// with ps ∈ {0,1} selecting position-sensitive matching, Dist_location ∈
// {0,1} indicating MBR overlap, and four weighted non-locational feature
// distances (volume, status count, average density, average connectivity),
// each |x−f| / min(x,f) clamped to [0,1] as in the paper's candidate-search
// example.
//
// # Phased execution
//
// Query execution is filter-and-refine, organized as a three-phase
// pipeline mirroring the extractor's output stage:
//
//  1. Filter — probe the pattern base's locational (R-tree) or
//     non-locational (4-D grid) index with ranges derived from the
//     distance threshold, collecting candidate entries (sequential; the
//     probe is cheap).
//  2. Refine — evaluate the expensive grid-cell-level match for every
//     candidate surviving the exact cluster-level feature distance: the
//     best alignment found by an A*-style anytime search
//     (position-insensitive case) or the identity alignment
//     (position-sensitive case). This phase fans out across
//     Query.Workers goroutines; candidates are independent, so each
//     worker writes only its own result slot.
//  3. Order — keep survivors within the threshold, sort by (distance,
//     id), apply the top-k limit (sequential).
//
// Results are byte-identical at every worker count: the parallel phase
// computes the same float per candidate regardless of scheduling, and
// the final total order normalizes collection order.
//
// # Concurrency against the base
//
// Run executes against a Source — either a pinned *archive.Snapshot
// (point-in-time view, the facade's choice) or a *archive.Base (each
// probe takes a fresh snapshot). Either way the query never holds the
// base's lock, so analysts can hammer the base while shards append; see
// the internal/archive package comment for the isolation contract.
package match
