package match

import (
	"math/rand"
	"testing"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
)

// TestCellDistanceSymmetryUnderInverseAlignment: D(a, b, v) == D(b, a, -v)
// for any alignment v — the metric must not depend on which cluster is the
// "target".
func TestCellDistanceSymmetryUnderInverseAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		a := summarize(t, blob(rng, 150+rng.Intn(150), rng.Float64()*20, rng.Float64()*20, 0.5+rng.Float64()), 0)
		b := summarize(t, blob(rng, 150+rng.Intn(150), rng.Float64()*20, rng.Float64()*20, 0.5+rng.Float64()), 1)
		align := grid.CoordOf(int32(rng.Intn(9)-4), int32(rng.Intn(9)-4))
		var inv grid.Coord
		inv.D = align.D
		for i := uint8(0); i < align.D; i++ {
			inv.C[i] = -align.C[i]
		}
		d1 := CellDistance(a, b, align)
		d2 := CellDistance(b, a, inv)
		if diff := d1 - d2; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("trial %d: D(a,b,%v)=%g != D(b,a,%v)=%g", trial, align, d1, inv, d2)
		}
		if d1 < 0 || d1 > 1 {
			t.Fatalf("distance out of range: %g", d1)
		}
	}
}

// TestFeatureDistanceProperties: identity, symmetry, range, and weight
// linearity.
func TestFeatureDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := EqualWeights()
	for trial := 0; trial < 200; trial++ {
		var a, b [4]float64
		for d := 0; d < 4; d++ {
			a[d] = rng.Float64() * 100
			b[d] = rng.Float64() * 100
		}
		if FeatureDistance(a, a, w) != 0 {
			t.Fatal("identity violated")
		}
		d1, d2 := FeatureDistance(a, b, w), FeatureDistance(b, a, w)
		if d1 != d2 {
			t.Fatalf("symmetry violated: %g vs %g", d1, d2)
		}
		if d1 < 0 || d1 > 1 {
			t.Fatalf("range violated: %g", d1)
		}
	}
	// A single fully-weighted dimension reduces to relDist.
	wv := Weights{Volume: 1}
	if got := FeatureDistance([4]float64{10, 5, 5, 5}, [4]float64{20, 9, 9, 9}, wv); got != 1 {
		t.Fatalf("single-dim distance = %g, want 1 (clamped)", got)
	}
}

// TestFeatureRangesConsistent: any vector inside the returned ranges has
// per-dimension weighted distance <= threshold; any vector outside on some
// bounded dimension exceeds it.
func TestFeatureRangesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	w := Weights{Volume: 0.4, Status: 0.3, Density: 0.2, Connectivity: 0.1}
	for trial := 0; trial < 300; trial++ {
		var f [4]float64
		for d := 0; d < 4; d++ {
			f[d] = 1 + rng.Float64()*50
		}
		threshold := 0.05 + rng.Float64()*0.2
		lo, hi := FeatureRanges(f, w, threshold)
		ws := [4]float64{w.Volume, w.Status, w.Density, w.Connectivity}
		for d := 0; d < 4; d++ {
			bound := threshold / ws[d]
			if bound >= 1 {
				continue // unbounded dimension
			}
			inside := lo[d] + (hi[d]-lo[d])*rng.Float64()
			if got := ws[d] * relDist(inside, f[d]); got > threshold+1e-9 {
				t.Fatalf("inside value %g exceeds threshold: %g", inside, got)
			}
			above := hi[d] * 1.01
			if got := ws[d] * relDist(above, f[d]); got <= threshold {
				t.Fatalf("outside value %g within threshold: %g", above, got)
			}
			below := lo[d] * 0.99
			if below > 0 {
				if got := ws[d] * relDist(below, f[d]); got <= threshold {
					t.Fatalf("outside value %g within threshold: %g", below, got)
				}
			}
		}
	}
}

// TestBestAlignmentIdempotentOnSelf: a summary aligned with itself at zero
// offset is optimal, and the search must find it.
func TestBestAlignmentIdempotentOnSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		s := summarize(t, blob(rng, 200, 0, 0, 1), 0)
		d, align := BestAlignment(s, s, 32)
		if d != 0 {
			t.Fatalf("self alignment distance %g", d)
		}
		if !align.IsZero() {
			t.Fatalf("self alignment offset %v", align)
		}
	}
}

var _ = geom.Point{} // keep geom imported for the helpers above
