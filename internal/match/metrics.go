package match

import "streamsum/internal/obs"

// Process-wide match-phase metrics (obs.Default), recorded by every Run
// regardless of per-query tracing. Per-shard segment scan and zone-skip
// counts live in internal/segstore's families; these cover the phases
// the paper's filter-and-refine analysis reports.
var (
	metricQueries = obs.NewCounter("sgs_match_queries_total",
		"Matching queries executed.")
	metricCandidates = obs.NewCounter("sgs_match_candidates_total",
		"Index candidates returned by filter-phase probes.")
	metricRefined = obs.NewCounter("sgs_match_refined_total",
		"Candidates that survived the cluster-level gate into the refine phase.")
	metricFilterSeconds = obs.NewHistogram("sgs_match_filter_seconds",
		"Filter phase wall time (parallel gated index probes across shards).")
	metricRefineSeconds = obs.NewHistogram("sgs_match_refine_seconds",
		"Refine phase wall time (grid-cell-level matches, including disk loads).")
	metricOrderSeconds = obs.NewHistogram("sgs_match_order_seconds",
		"Order phase wall time (threshold, sort, top-k).")
)
