// Package extran implements the Extra-N baseline (Yang, Rundensteiner,
// Ward: "Neighbor-based pattern detection for windows over streaming
// data", EDBT 2009) as characterized in §8.1 of the SGS paper: the
// state-of-the-art incremental algorithm that extracts density-based
// clusters over sliding windows in *full representation only*.
//
// Extra-N's defining trait — and the reason the paper contrasts it with
// C-SGS — is that it maintains predicted cluster-membership structures for
// every open "view" (future window). With win/slide = V views, each
// arriving object updates up to V per-view structures, so both CPU and
// memory grow with the win/slide ratio, whereas C-SGS's skeletal-grid
// meta-data is independent of it (§8.1: "the performance of Extra-N is
// affected by the increasing number of views ... while the meta-data
// maintained by C-SGS ... is independent from this ratio").
//
// Like C-SGS, Extra-N runs exactly one range query search per arriving
// object and pre-computes all expiry effects through lifespan analysis;
// the per-view structures here are union-find forests over the objects
// predicted to be core in that view, with parent tables held in
// open-addressing conntab.IDMaps — the per-view map traffic is the
// baseline's dominant cost, so its layout matters the same way the
// connection tables matter to C-SGS.
//
// Cluster-membership semantics are pure Definition 3.1 (object-level edge
// attachment); see internal/dbscan for the one corner case where the
// cell-granular C-SGS output differs.
//
// # Concurrency
//
// An Extractor is single-writer: Push, PushBatch, Flush and Stats must not
// be called concurrently. The same internal fan-out contracts as
// internal/core apply:
//
//   - Ingest (batch.go): per-segment range query searches and new-object
//     career constructions fan out read-only over the frozen PointIndex
//     (see grid.PointIndex's concurrency contract) across Config.Workers
//     goroutines; all mutation — object table, index, trackers, per-view
//     union-find forests — replays sequentially in arrival order, with
//     one deferred unionViews pass per touched object.
//   - Output (extran.go emit): grouping runs sequentially because find
//     compresses paths, but once every live core has been through find,
//     root lookups are pure reads; edge-attachment resolution then fans
//     out across objects and member sorting across clusters, bounded by
//     Config.EmitWorkers.
//
// Both fan-outs are deterministic: emitted windows are byte-identical to
// the fully sequential paths at every worker setting, asserted under
// -race by the package tests.
package extran
