package extran

import (
	"encoding/json"
	"math/rand"
	"testing"

	"streamsum/internal/core"
	"streamsum/internal/geom"
	"streamsum/internal/window"
)

func batchStream(n, dim int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, 3)
	for i := range centers {
		centers[i] = make(geom.Point, dim)
		for d := range centers[i] {
			centers[i][d] = rng.Float64() * 6
		}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		if rng.Float64() < 0.8 {
			c := centers[rng.Intn(len(centers))]
			for d := range p {
				p[d] = c[d] + rng.NormFloat64()*0.4
			}
		} else {
			for d := range p {
				p[d] = rng.Float64() * 6
			}
		}
		pts[i] = p
	}
	return pts
}

// TestPushBatchMatchesSequential: the Extra-N batch path must emit
// byte-identical WindowResults to one-by-one Push on a fixed-seed stream
// (race-clean under -race thanks to the read-only discovery fan-out).
func TestPushBatchMatchesSequential(t *testing.T) {
	pts := batchStream(5000, 2, 23)
	cfg := Config{
		Dim: 2, ThetaR: 0.6, ThetaC: 4,
		Window:  window.Spec{Win: 1200, Slide: 400},
		Workers: 4,
	}

	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []*core.WindowResult
	for _, p := range pts {
		_, emitted, err := seq.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, emitted...)
	}
	want = append(want, seq.Flush())

	for _, batch := range []int{1, 11, 400, 5000} {
		bex, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got []*core.WindowResult
		for lo := 0; lo < len(pts); lo += batch {
			hi := lo + batch
			if hi > len(pts) {
				hi = len(pts)
			}
			emitted, err := bex.PushBatch(pts[lo:hi], nil)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, emitted...)
		}
		got = append(got, bex.Flush())

		wb, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(gb) {
			t.Errorf("batch=%d: batched Extra-N output differs from sequential", batch)
		}
	}
}
