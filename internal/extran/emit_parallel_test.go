package extran

import (
	"encoding/json"
	"testing"

	"streamsum/internal/core"
	"streamsum/internal/geom"
	"streamsum/internal/window"
)

func runWorkers(t *testing.T, cfg Config, pts []geom.Point) []byte {
	t.Helper()
	ex, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []*core.WindowResult
	for _, p := range pts {
		_, emitted, err := ex.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, emitted...)
	}
	out = append(out, ex.Flush())
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEmitParallelMatchesSequential: the Extra-N output stage must emit
// byte-identical WindowResult sequences at every EmitWorkers setting —
// the read-only root-lookup fan-out and per-cluster sorts may not change
// the canonical cluster sequence. Race-clean under -race.
func TestEmitParallelMatchesSequential(t *testing.T) {
	pts := batchStream(5000, 2, 31)
	base := Config{
		Dim: 2, ThetaR: 0.6, ThetaC: 4,
		Window:      window.Spec{Win: 1200, Slide: 400},
		EmitWorkers: 1,
	}
	want := runWorkers(t, base, pts)
	for _, ew := range []int{1, 2, 8} {
		cfg := base
		cfg.EmitWorkers = ew
		if got := runWorkers(t, cfg, pts); string(got) != string(want) {
			t.Errorf("emitWorkers=%d: Extra-N output differs from sequential emit", ew)
		}
	}
}
