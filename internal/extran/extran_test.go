package extran

import (
	"math/rand"
	"sort"
	"testing"

	"streamsum/internal/core"
	"streamsum/internal/dbscan"
	"streamsum/internal/geom"
	"streamsum/internal/window"
)

type tupleLog struct {
	ids []int64
	pts []geom.Point
	pos []int64
}

func (l *tupleLog) windowContent(spec window.Spec, n int64) ([]geom.Point, []int64) {
	var pts []geom.Point
	var ids []int64
	for i := range l.ids {
		if spec.Covers(n, l.pos[i]) {
			pts = append(pts, l.pts[i])
			ids = append(ids, l.ids[i])
		}
	}
	return pts, ids
}

func clusteredStream(rng *rand.Rand, n, dim int) []geom.Point {
	centers := make([][]float64, 4)
	for i := range centers {
		centers[i] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			centers[i][d] = rng.Float64() * 8
		}
	}
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, dim)
		if rng.Float64() < 0.15 {
			for d := 0; d < dim; d++ {
				p[d] = rng.Float64() * 8
			}
		} else {
			c := centers[rng.Intn(len(centers))]
			for d := 0; d < dim; d++ {
				c[d] += (rng.Float64() - 0.5) * 0.05
				p[d] = c[d] + rng.NormFloat64()*0.35
			}
		}
		pts[i] = p
	}
	return pts
}

func runStream(t *testing.T, cfg Config, pts []geom.Point) (*Extractor, *tupleLog, []*core.WindowResult) {
	t.Helper()
	ex, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	log := &tupleLog{}
	var results []*core.WindowResult
	for _, p := range pts {
		id, emitted, err := ex.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		log.ids = append(log.ids, id)
		log.pts = append(log.pts, p)
		log.pos = append(log.pos, id)
		results = append(results, emitted...)
	}
	return ex, log, results
}

func signature(r *core.WindowResult) [][]int64 {
	cls := append([]*core.Cluster(nil), r.Clusters...)
	sort.Slice(cls, func(i, j int) bool { return cls[i].Cores[0] < cls[j].Cores[0] })
	sig := make([][]int64, len(cls))
	for i, c := range cls {
		sig[i] = c.Members
	}
	return sig
}

func verifyWindow(t *testing.T, cfg Config, log *tupleLog, r *core.WindowResult) {
	t.Helper()
	pts, ids := log.windowContent(cfg.Window, r.Window)
	want, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: cfg.ThetaR, ThetaC: cfg.ThetaC})
	if err != nil {
		t.Fatal(err)
	}
	got := signature(r)
	if !dbscan.EqualSignature(got, want.Signature()) {
		t.Fatalf("window %d: clusters differ\n got: %v\nwant: %v", r.Window, got, want.Signature())
	}
	for _, c := range r.Clusters {
		for _, id := range c.Cores {
			if !want.IsCore[id] {
				t.Fatalf("window %d: %d wrongly core", r.Window, id)
			}
		}
	}
}

func TestSlidingWindowsMatchOracle(t *testing.T) {
	cases := []struct {
		thetaR float64
		thetaC int
		win    int64
		slide  int64
	}{
		{0.4, 5, 300, 50},
		{0.6, 4, 300, 100},
		{0.9, 3, 200, 200},
	}
	for ci, pc := range cases {
		rng := rand.New(rand.NewSource(int64(10 + ci)))
		cfg := Config{Dim: 2, ThetaR: pc.thetaR, ThetaC: pc.thetaC,
			Window: window.Spec{Win: pc.win, Slide: pc.slide}}
		_, log, results := runStream(t, cfg, clusteredStream(rng, 1400, 2))
		if len(results) == 0 {
			t.Fatalf("case %d: no windows", ci)
		}
		for _, r := range results {
			verifyWindow(t, cfg, log, r)
		}
	}
}

func TestManyViews(t *testing.T) {
	// Small slide → many views: the regime where Extra-N does the most
	// per-view work; correctness must hold.
	rng := rand.New(rand.NewSource(42))
	cfg := Config{Dim: 2, ThetaR: 0.5, ThetaC: 3,
		Window: window.Spec{Win: 200, Slide: 10}}
	_, log, results := runStream(t, cfg, clusteredStream(rng, 900, 2))
	for _, r := range results {
		verifyWindow(t, cfg, log, r)
	}
}

func TestViewsReclaimed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := Config{Dim: 2, ThetaR: 0.5, ThetaC: 3,
		Window: window.Spec{Win: 100, Slide: 25}}
	ex, _, _ := runStream(t, cfg, clusteredStream(rng, 600, 2))
	_, views, _ := ex.Stats()
	if views > cfg.Window.Views()+1 {
		t.Fatalf("view leak: %d open views for %d views/window", views, cfg.Window.Views())
	}
	for i := 0; i < 5; i++ {
		ex.Flush()
	}
	objs, _, entries := ex.Stats()
	if objs != 0 || entries != 0 {
		t.Fatalf("state not reclaimed: objs=%d entries=%d", objs, entries)
	}
}

func TestAgainstCSGSCores(t *testing.T) {
	// Extra-N and C-SGS must agree on every window's core objects and on
	// the partition of cores into clusters (the representations differ only
	// in the cell-granularity edge-attachment corner case).
	rng := rand.New(rand.NewSource(21))
	pts := clusteredStream(rng, 1200, 2)
	cfg := Config{Dim: 2, ThetaR: 0.5, ThetaC: 4,
		Window: window.Spec{Win: 300, Slide: 100}}

	exN, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exC, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rn, rc []*core.WindowResult
	for _, p := range pts {
		_, en, err := exN.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, ec, err := exC.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		rn = append(rn, en...)
		rc = append(rc, ec...)
	}
	if len(rn) != len(rc) || len(rn) == 0 {
		t.Fatalf("window counts differ: %d vs %d", len(rn), len(rc))
	}
	for i := range rn {
		a, b := rn[i], rc[i]
		if len(a.Clusters) != len(b.Clusters) {
			t.Fatalf("window %d: %d vs %d clusters", a.Window, len(a.Clusters), len(b.Clusters))
		}
		sigA := make([][]int64, len(a.Clusters))
		sigB := make([][]int64, len(b.Clusters))
		for j := range a.Clusters {
			sigA[j] = a.Clusters[j].Cores
			sigB[j] = b.Clusters[j].Cores
		}
		sort.Slice(sigA, func(x, y int) bool { return sigA[x][0] < sigA[y][0] })
		sort.Slice(sigB, func(x, y int) bool { return sigB[x][0] < sigB[y][0] })
		if !dbscan.EqualSignature(sigA, sigB) {
			t.Fatalf("window %d: core partitions differ\nextra-n: %v\nc-sgs: %v", a.Window, sigA, sigB)
		}
	}
}

func TestPushErrors(t *testing.T) {
	ex, _ := New(Config{Dim: 2, ThetaR: 1, ThetaC: 2, Window: window.Spec{Win: 10, Slide: 5}})
	if _, _, err := ex.Push(geom.Point{1}, 0); err == nil {
		t.Error("dimension mismatch accepted")
	}
	ext, _ := New(Config{Dim: 1, ThetaR: 1, ThetaC: 2,
		Window: window.Spec{Kind: window.TimeBased, Win: 10, Slide: 5}})
	if _, _, err := ext.Push(geom.Point{0}, 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ext.Push(geom.Point{0}, 99); err == nil {
		t.Error("out-of-order accepted")
	}
}
