package extran

import (
	"fmt"
	"sort"
	"time"

	"streamsum/internal/conntab"
	"streamsum/internal/core"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/par"
	"streamsum/internal/trace"
	"streamsum/internal/window"
)

// Config is identical to the C-SGS extractor's configuration.
type Config = core.Config

// object mirrors core.object but carries per-view membership instead of
// cell references.
type object struct {
	id       int64
	p        geom.Point
	last     int64
	coreLast int64
	grownSeg int64 // batch segment that last recorded a career growth (dedup)
	tracker  window.CoreTracker
	nbrs     []*object
}

// view is the predicted cluster structure of one future window: a
// union-find forest over the objects predicted to be core in it. The
// parent table is an open-addressed inline map (conntab.IDMap) — the
// per-view map traffic is Extra-N's distinguishing cost, so its layout is
// the baseline's cache-friendliness lever, mirroring what conntab.Table
// does for C-SGS's connection tables.
type view struct {
	parent conntab.IDMap
}

func newView() *view { return &view{} }

// find returns x's component root, compressing the path it walked.
func (v *view) find(x int64) int64 {
	r := x
	for {
		p, ok := v.parent.Get(r)
		if !ok || p == r {
			break
		}
		r = p
	}
	for x != r {
		p, _ := v.parent.Get(x)
		v.parent.Set(x, r)
		x = p
	}
	return r
}

// root returns x's component root without mutating the forest. After every
// member of the component has been through find (as the output stage's
// grouping pass guarantees for live cores), root is a single probe; it is
// the read-only lookup the parallel edge-attachment phase fans out with.
func (v *view) root(x int64) int64 {
	for {
		p, ok := v.parent.Get(x)
		if !ok || p == x {
			return x
		}
		x = p
	}
}

func (v *view) union(a, b int64) {
	ra, rb := v.find(a), v.find(b)
	if ra != rb {
		v.parent.Set(ra, rb)
	}
}

// Extractor is the Extra-N pattern extractor. Not safe for concurrent use.
type Extractor struct {
	cfg     Config
	geo     *grid.Geometry
	ix      *grid.PointIndex
	cur     int64
	lastPos int64
	nextID  int64
	nextCID int64
	segSeq  int64 // batch segment counter (career-growth dedup epoch)

	objs   map[int64]*object
	views  map[int64]*view     // window index -> predicted membership
	expiry map[int64][]*object // window n -> objects with last == n

	// tr is the in-flight batch's span trace (flight recorder category
	// Ingest), set only for the duration of a PushBatch; nil otherwise
	// (single-tuple Push is untraced). Ingestion is single-caller, so no
	// synchronization is needed.
	tr *trace.Trace
}

// New returns an Extra-N extractor for the given query.
func New(cfg Config) (*Extractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo, err := grid.NewGeometry(cfg.Dim, cfg.ThetaR)
	if err != nil {
		return nil, err
	}
	return &Extractor{
		cfg:     cfg,
		geo:     geo,
		ix:      grid.NewPointIndex(geo),
		lastPos: -1,
		objs:    make(map[int64]*object),
		views:   make(map[int64]*view),
		expiry:  make(map[int64][]*object),
	}, nil
}

// Config returns the extractor's configuration.
func (e *Extractor) Config() Config { return e.cfg }

// CurrentWindow returns the index of the next window to be emitted.
func (e *Extractor) CurrentWindow() int64 { return e.cur }

// Stats reports live meta-data sizes: objects, open views, and total
// per-view membership entries (the view-dependent memory term).
func (e *Extractor) Stats() (objects, views, viewEntries int) {
	objects = len(e.objs)
	views = len(e.views)
	for _, v := range e.views {
		viewEntries += v.parent.Len()
	}
	return
}

// Push feeds one tuple; identical contract to the C-SGS extractor's Push.
func (e *Extractor) Push(p geom.Point, ts int64) (int64, []*core.WindowResult, error) {
	if len(p) != e.cfg.Dim {
		return 0, nil, errDim(len(p), e.cfg.Dim)
	}
	id := e.nextID
	e.nextID++
	pos := id
	if e.cfg.Window.Kind == window.TimeBased {
		pos = ts
	}
	if pos < e.lastPos {
		return 0, nil, errOrder(pos, e.lastPos)
	}
	e.lastPos = pos
	core.MetricTuples.Inc()
	var out []*core.WindowResult
	for pos >= e.cfg.Window.End(e.cur) {
		out = append(out, e.emit())
	}
	if e.cfg.Window.LastWindow(pos) < e.cur {
		return id, out, nil
	}
	e.insert(id, p, pos)
	return id, out, nil
}

// Flush force-emits the current window.
func (e *Extractor) Flush() *core.WindowResult { return e.emit() }

func (e *Extractor) insert(id int64, p geom.Point, pos int64) {
	e.applyInsert(id, p, pos, e.discoverInto(p, nil))
}

// discoverInto appends to buf every live object within θr of p — the one
// range query search per arrival. Pure read of the index and object table;
// safe to run concurrently with other discoverInto calls over frozen
// state (the batched path's parallel discovery phase, see batch.go).
func (e *Extractor) discoverInto(p geom.Point, buf []*object) []*object {
	e.ix.RangeQuery(p, func(ent grid.Entry) bool {
		buf = append(buf, e.objs[ent.ID])
		return true
	})
	return buf
}

// applyInsert wires one tuple with pre-discovered neighbors cands into the
// window state. Mirrors core.applyInsert: all mutation (object table,
// index, trackers, per-view union-find forests) happens here, sequentially.
func (e *Extractor) applyInsert(id int64, p geom.Point, pos int64, cands []*object) *object {
	o := &object{
		id:       id,
		p:        p,
		last:     e.cfg.Window.LastWindow(pos),
		coreLast: window.Never,
		tracker:  window.NewCoreTracker(e.cfg.ThetaC),
	}
	e.objs[id] = o
	e.expiry[o.last] = append(e.expiry[o.last], o)

	type grown struct {
		q   *object
		old int64
	}
	var affected []grown
	for _, q := range cands {
		o.nbrs = append(o.nbrs, q)
		q.nbrs = append(q.nbrs, o)
		o.tracker.Add(q.last)
		if q.tracker.Add(o.last) {
			if nl := q.tracker.CoreLast(q.last); nl > q.coreLast {
				affected = append(affected, grown{q, q.coreLast})
				q.coreLast = nl
			}
		}
	}
	e.ix.Insert(id, p)
	o.coreLast = o.tracker.CoreLast(o.last)

	// Per-view membership maintenance: the view-count-dependent work that
	// distinguishes Extra-N. Union the new object with each core neighbor
	// in every view where both are predicted core; re-run for prolonged
	// neighbors (unions are idempotent).
	e.unionViews(o, e.cur)
	for _, g := range affected {
		from := g.old + 1
		if from < e.cur {
			from = e.cur
		}
		e.unionViews(g.q, from)
	}
	return o
}

// unionViews joins a with each of its core neighbors in all views from
// `from` through the end of their joint core careers.
func (e *Extractor) unionViews(a *object, from int64) {
	if a.coreLast < from {
		return
	}
	live := 0
	for _, b := range a.nbrs {
		if b.last < e.cur {
			continue
		}
		a.nbrs[live] = b
		live++
		hi := min64(a.coreLast, b.coreLast)
		for v := from; v <= hi; v++ {
			e.view(v).union(a.id, b.id)
		}
	}
	a.nbrs = a.nbrs[:live]
}

func (e *Extractor) view(n int64) *view {
	v := e.views[n]
	if v == nil {
		v = newView()
		e.views[n] = v
	}
	return v
}

// emit outputs the clusters of the current window in full representation.
//
// Like core's output stage it is split into a cheap sequential grouping
// phase and parallel per-object / per-cluster phases (bounded by
// Config.EmitWorkers): grouping must run sequentially because find
// compresses paths, but once every live core has been through find, root
// lookups are pure reads and the edge-attachment scan fans out across
// objects (each object's neighbor-list compaction is owned by exactly one
// work item); member sorting then fans out across clusters. Output is
// byte-identical at every worker count.
func (e *Extractor) emit() *core.WindowResult {
	sp := e.tr.Start("emit")
	start := time.Now()
	n := e.cur
	res := &core.WindowResult{Window: n}
	v := e.view(n)
	workers := par.DefaultWorkers(e.cfg.EmitWorkers)

	// Phase 1 (sequential): group live core objects by their view-n
	// component; collect the non-core objects for the parallel attachment
	// scan.
	groups := make(map[int64][]*object)
	var roots []int64
	var nonCore []*object
	for _, o := range e.objs {
		if o.coreLast < n {
			if len(o.nbrs) > 0 {
				nonCore = append(nonCore, o)
			}
			continue
		}
		r := v.find(o.id)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], o)
	}
	// Deterministic cluster order: by smallest core id.
	minID := make(map[int64]int64, len(groups))
	for r, g := range groups {
		m := g[0].id
		for _, o := range g {
			if o.id < m {
				m = o.id
			}
		}
		minID[r] = m
	}
	sort.Slice(roots, func(i, j int) bool { return minID[roots[i]] < minID[roots[j]] })

	rootIdx := make(map[int64]int, len(roots))
	for i, r := range roots {
		rootIdx[r] = i
	}

	// Phase 2 (parallel over clusters): core-member collection into
	// pre-assigned slots with pre-assigned ids. An empty window keeps
	// res.Clusters nil, preserving the serialized shape of cluster-less
	// windows ("Clusters":null, not []).
	if len(roots) > 0 {
		res.Clusters = make([]*core.Cluster, len(roots))
	}
	baseID := e.nextCID
	e.nextCID += int64(len(roots))
	par.For(workers, len(roots), func(i int) {
		g := groups[roots[i]]
		cl := &core.Cluster{ID: baseID + int64(i)}
		cl.Members = make([]int64, 0, len(g))
		cl.Cores = make([]int64, 0, len(g))
		for _, o := range g {
			cl.Members = append(cl.Members, o.id)
			cl.Cores = append(cl.Cores, o.id)
		}
		res.Clusters[i] = cl
	})

	// Phase 3 (parallel over non-core objects): resolve which clusters each
	// edge object attaches to (Definition 3.1: neighbors of cores; possibly
	// several clusters). Every live core went through find in phase 1, so
	// root is a read-only lookup here; the only write is each object's own
	// neighbor-list compaction.
	attach := make([][]int, len(nonCore))
	par.For(workers, len(nonCore), func(i int) {
		o := nonCore[i]
		var cis []int
		live := 0
		for _, b := range o.nbrs {
			if b.last < e.cur {
				continue
			}
			o.nbrs[live] = b
			live++
			if b.coreLast < n {
				continue
			}
			ci := rootIdx[v.root(b.id)]
			dup := false
			for _, x := range cis {
				if x == ci {
					dup = true
					break
				}
			}
			if !dup {
				cis = append(cis, ci)
			}
		}
		o.nbrs = o.nbrs[:live]
		attach[i] = cis
	})
	// Sequential merge; member order is canonicalized by the sort below.
	for i, o := range nonCore {
		for _, ci := range attach[i] {
			res.Clusters[ci].Members = append(res.Clusters[ci].Members, o.id)
		}
	}

	// Phase 4 (parallel over clusters): canonical member order.
	par.For(workers, len(res.Clusters), func(i int) {
		c := res.Clusters[i]
		sort.Slice(c.Members, func(a, b int) bool { return c.Members[a] < c.Members[b] })
		sort.Slice(c.Cores, func(a, b int) bool { return c.Cores[a] < c.Cores[b] })
	})

	// Expiration: drop the view that just closed and the expired tuples.
	delete(e.views, n)
	for _, o := range e.expiry[n] {
		e.ix.Remove(o.id, o.p)
		delete(e.objs, o.id)
		o.nbrs = nil
	}
	delete(e.expiry, n)
	e.cur = n + 1
	core.MetricEmitSeconds.Observe(time.Since(start))
	core.MetricWindows.Inc()
	core.MetricClusters.Add(uint64(len(res.Clusters)))
	sp.SetInt("window", n)
	sp.SetInt("clusters", int64(len(res.Clusters)))
	sp.End()
	return res
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

type dimError struct{ got, want int }

func errDim(got, want int) error { return &dimError{got, want} }
func (e *dimError) Error() string {
	return fmt.Sprintf("extran: tuple dimension %d != query dimension %d", e.got, e.want)
}

type orderError struct{ pos, last int64 }

func errOrder(pos, last int64) error { return &orderError{pos, last} }
func (e *orderError) Error() string {
	return fmt.Sprintf("extran: out-of-order position %d after %d", e.pos, e.last)
}

type tsLenError struct{ got, want int }

func errTSLen(got, want int) error { return &tsLenError{got, want} }
func (e *tsLenError) Error() string {
	return fmt.Sprintf("extran: PushBatch got %d timestamps for %d tuples", e.got, e.want)
}
