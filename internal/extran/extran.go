// Package extran implements the Extra-N baseline (Yang, Rundensteiner,
// Ward: "Neighbor-based pattern detection for windows over streaming
// data", EDBT 2009) as characterized in §8.1 of the SGS paper: the
// state-of-the-art incremental algorithm that extracts density-based
// clusters over sliding windows in *full representation only*.
//
// Extra-N's defining trait — and the reason the paper contrasts it with
// C-SGS — is that it maintains predicted cluster-membership structures for
// every open "view" (future window). With win/slide = V views, each
// arriving object updates up to V per-view structures, so both CPU and
// memory grow with the win/slide ratio, whereas C-SGS's skeletal-grid
// meta-data is independent of it (§8.1: "the performance of Extra-N is
// affected by the increasing number of views ... while the meta-data
// maintained by C-SGS ... is independent from this ratio").
//
// Like C-SGS, Extra-N runs exactly one range query search per arriving
// object and pre-computes all expiry effects through lifespan analysis; the
// per-view structures here are union-find forests over the objects
// predicted to be core in that view.
//
// Cluster-membership semantics are pure Definition 3.1 (object-level edge
// attachment); see internal/dbscan for the one corner case where the
// cell-granular C-SGS output differs.
package extran

import (
	"fmt"
	"sort"

	"streamsum/internal/core"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/window"
)

// Config is identical to the C-SGS extractor's configuration.
type Config = core.Config

// object mirrors core.object but carries per-view membership instead of
// cell references.
type object struct {
	id       int64
	p        geom.Point
	last     int64
	coreLast int64
	grownSeg int64 // batch segment that last recorded a career growth (dedup)
	tracker  window.CoreTracker
	nbrs     []*object
}

// view is the predicted cluster structure of one future window: a
// union-find forest over the objects predicted to be core in it.
type view struct {
	parent map[int64]int64
}

func newView() *view { return &view{parent: make(map[int64]int64)} }

func (v *view) find(x int64) int64 {
	p, ok := v.parent[x]
	if !ok || p == x {
		return x
	}
	r := v.find(p)
	v.parent[x] = r
	return r
}

func (v *view) union(a, b int64) {
	ra, rb := v.find(a), v.find(b)
	if ra != rb {
		v.parent[ra] = rb
	}
}

// Extractor is the Extra-N pattern extractor. Not safe for concurrent use.
type Extractor struct {
	cfg     Config
	geo     *grid.Geometry
	ix      *grid.PointIndex
	cur     int64
	lastPos int64
	nextID  int64
	nextCID int64
	segSeq  int64 // batch segment counter (career-growth dedup epoch)

	objs   map[int64]*object
	views  map[int64]*view     // window index -> predicted membership
	expiry map[int64][]*object // window n -> objects with last == n
}

// New returns an Extra-N extractor for the given query.
func New(cfg Config) (*Extractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo, err := grid.NewGeometry(cfg.Dim, cfg.ThetaR)
	if err != nil {
		return nil, err
	}
	return &Extractor{
		cfg:     cfg,
		geo:     geo,
		ix:      grid.NewPointIndex(geo),
		lastPos: -1,
		objs:    make(map[int64]*object),
		views:   make(map[int64]*view),
		expiry:  make(map[int64][]*object),
	}, nil
}

// Config returns the extractor's configuration.
func (e *Extractor) Config() Config { return e.cfg }

// CurrentWindow returns the index of the next window to be emitted.
func (e *Extractor) CurrentWindow() int64 { return e.cur }

// Stats reports live meta-data sizes: objects, open views, and total
// per-view membership entries (the view-dependent memory term).
func (e *Extractor) Stats() (objects, views, viewEntries int) {
	objects = len(e.objs)
	views = len(e.views)
	for _, v := range e.views {
		viewEntries += len(v.parent)
	}
	return
}

// Push feeds one tuple; identical contract to the C-SGS extractor's Push.
func (e *Extractor) Push(p geom.Point, ts int64) (int64, []*core.WindowResult, error) {
	if len(p) != e.cfg.Dim {
		return 0, nil, errDim(len(p), e.cfg.Dim)
	}
	id := e.nextID
	e.nextID++
	pos := id
	if e.cfg.Window.Kind == window.TimeBased {
		pos = ts
	}
	if pos < e.lastPos {
		return 0, nil, errOrder(pos, e.lastPos)
	}
	e.lastPos = pos
	var out []*core.WindowResult
	for pos >= e.cfg.Window.End(e.cur) {
		out = append(out, e.emit())
	}
	if e.cfg.Window.LastWindow(pos) < e.cur {
		return id, out, nil
	}
	e.insert(id, p, pos)
	return id, out, nil
}

// Flush force-emits the current window.
func (e *Extractor) Flush() *core.WindowResult { return e.emit() }

func (e *Extractor) insert(id int64, p geom.Point, pos int64) {
	e.applyInsert(id, p, pos, e.discoverInto(p, nil))
}

// discoverInto appends to buf every live object within θr of p — the one
// range query search per arrival. Pure read of the index and object table;
// safe to run concurrently with other discoverInto calls over frozen
// state (the batched path's parallel discovery phase, see batch.go).
func (e *Extractor) discoverInto(p geom.Point, buf []*object) []*object {
	e.ix.RangeQuery(p, func(ent grid.Entry) bool {
		buf = append(buf, e.objs[ent.ID])
		return true
	})
	return buf
}

// applyInsert wires one tuple with pre-discovered neighbors cands into the
// window state. Mirrors core.applyInsert: all mutation (object table,
// index, trackers, per-view union-find forests) happens here, sequentially.
func (e *Extractor) applyInsert(id int64, p geom.Point, pos int64, cands []*object) *object {
	o := &object{
		id:       id,
		p:        p,
		last:     e.cfg.Window.LastWindow(pos),
		coreLast: window.Never,
		tracker:  window.NewCoreTracker(e.cfg.ThetaC),
	}
	e.objs[id] = o
	e.expiry[o.last] = append(e.expiry[o.last], o)

	type grown struct {
		q   *object
		old int64
	}
	var affected []grown
	for _, q := range cands {
		o.nbrs = append(o.nbrs, q)
		q.nbrs = append(q.nbrs, o)
		o.tracker.Add(q.last)
		if q.tracker.Add(o.last) {
			if nl := q.tracker.CoreLast(q.last); nl > q.coreLast {
				affected = append(affected, grown{q, q.coreLast})
				q.coreLast = nl
			}
		}
	}
	e.ix.Insert(id, p)
	o.coreLast = o.tracker.CoreLast(o.last)

	// Per-view membership maintenance: the view-count-dependent work that
	// distinguishes Extra-N. Union the new object with each core neighbor
	// in every view where both are predicted core; re-run for prolonged
	// neighbors (unions are idempotent).
	e.unionViews(o, e.cur)
	for _, g := range affected {
		from := g.old + 1
		if from < e.cur {
			from = e.cur
		}
		e.unionViews(g.q, from)
	}
	return o
}

// unionViews joins a with each of its core neighbors in all views from
// `from` through the end of their joint core careers.
func (e *Extractor) unionViews(a *object, from int64) {
	if a.coreLast < from {
		return
	}
	live := 0
	for _, b := range a.nbrs {
		if b.last < e.cur {
			continue
		}
		a.nbrs[live] = b
		live++
		hi := min64(a.coreLast, b.coreLast)
		for v := from; v <= hi; v++ {
			e.view(v).union(a.id, b.id)
		}
	}
	a.nbrs = a.nbrs[:live]
}

func (e *Extractor) view(n int64) *view {
	v := e.views[n]
	if v == nil {
		v = newView()
		e.views[n] = v
	}
	return v
}

// emit outputs the clusters of the current window in full representation.
func (e *Extractor) emit() *core.WindowResult {
	n := e.cur
	res := &core.WindowResult{Window: n}
	v := e.view(n)

	// Group live core objects by their view-n component.
	groups := make(map[int64][]*object)
	var roots []int64
	for _, o := range e.objs {
		if o.coreLast < n {
			continue
		}
		r := v.find(o.id)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], o)
	}
	// Deterministic cluster order: by smallest core id.
	minID := make(map[int64]int64, len(groups))
	for r, g := range groups {
		m := g[0].id
		for _, o := range g {
			if o.id < m {
				m = o.id
			}
		}
		minID[r] = m
	}
	sort.Slice(roots, func(i, j int) bool { return minID[roots[i]] < minID[roots[j]] })

	rootIdx := make(map[int64]int, len(roots))
	for i, r := range roots {
		rootIdx[r] = i
	}
	for _, r := range roots {
		g := groups[r]
		cl := &core.Cluster{ID: e.nextCID}
		e.nextCID++
		for _, o := range g {
			cl.Members = append(cl.Members, o.id)
			cl.Cores = append(cl.Cores, o.id)
		}
		res.Clusters = append(res.Clusters, cl)
	}
	// Attach edge objects (Definition 3.1: neighbors of cores; possibly in
	// several clusters).
	for _, o := range e.objs {
		if o.coreLast >= n {
			continue
		}
		var seen map[int]bool
		live := 0
		for _, b := range o.nbrs {
			if b.last < e.cur {
				continue
			}
			o.nbrs[live] = b
			live++
			if b.coreLast < n {
				continue
			}
			ci := rootIdx[v.find(b.id)]
			if seen == nil {
				seen = make(map[int]bool, 2)
			}
			if !seen[ci] {
				seen[ci] = true
				res.Clusters[ci].Members = append(res.Clusters[ci].Members, o.id)
			}
		}
		o.nbrs = o.nbrs[:live]
	}
	for _, c := range res.Clusters {
		sort.Slice(c.Members, func(i, j int) bool { return c.Members[i] < c.Members[j] })
		sort.Slice(c.Cores, func(i, j int) bool { return c.Cores[i] < c.Cores[j] })
	}

	// Expiration: drop the view that just closed and the expired tuples.
	delete(e.views, n)
	for _, o := range e.expiry[n] {
		e.ix.Remove(o.id, o.p)
		delete(e.objs, o.id)
		o.nbrs = nil
	}
	delete(e.expiry, n)
	e.cur = n + 1
	return res
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

type dimError struct{ got, want int }

func errDim(got, want int) error { return &dimError{got, want} }
func (e *dimError) Error() string {
	return fmt.Sprintf("extran: tuple dimension %d != query dimension %d", e.got, e.want)
}

type orderError struct{ pos, last int64 }

func errOrder(pos, last int64) error { return &orderError{pos, last} }
func (e *orderError) Error() string {
	return fmt.Sprintf("extran: out-of-order position %d after %d", e.pos, e.last)
}

type tsLenError struct{ got, want int }

func errTSLen(got, want int) error { return &tsLenError{got, want} }
func (e *tsLenError) Error() string {
	return fmt.Sprintf("extran: PushBatch got %d timestamps for %d tuples", e.got, e.want)
}
