package extran

import (
	"time"

	"streamsum/internal/core"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/par"
	"streamsum/internal/trace"
	"streamsum/internal/window"
)

// Batched ingest for the Extra-N baseline, mirroring core's phased
// pipeline (see internal/core/batch.go for the full rationale): a batch
// is cut into emission-free segments; each segment's range query searches
// and new-object career constructions fan out read-only over the frozen
// PointIndex, intra-segment neighbors are found through a temporary
// per-segment cell map, and all shared-state mutation replays
// sequentially in arrival order. The per-view union-find maintenance —
// Extra-N's distinguishing (and view-count-dependent) cost — defers to
// one unionViews pass per touched object with final careers, which is
// exact for the same reason deferred refresh is in core: the views a pair
// must be joined in form the interval [cur, min of final careers], unions
// are idempotent, and the pre-segment invariant already covers the
// interval up to the pre-segment careers. Keeping the baseline
// batch-capable keeps the paper's §8.1 comparison meaningful at batched
// ingestion rates too.

// segCell mirrors core's per-segment cell grouping: per-cell scan and
// candidate sets computed once and shared by the cell's tuples.
type segCell struct {
	coord grid.Coord
	idxs  []int32        // segment tuple indices located in this cell
	scan  [][]grid.Entry // entry slices of reachable occupied index cells
	cands []int32        // segment tuple indices in CanNeighbor cells
}

// PushBatch feeds a batch of tuples with semantics identical to calling
// Push for each tuple in order; the segment-cutting contract (tss, error
// behavior, emission interleaving) is core.DriveBatch, shared verbatim
// with the C-SGS extractor so the two batch paths cannot drift.
func (e *Extractor) PushBatch(pts []geom.Point, tss []int64) ([]*core.WindowResult, error) {
	if tss != nil && len(tss) != len(pts) {
		return nil, errTSLen(len(tss), len(pts))
	}
	e.tr = trace.Default.Start(trace.Ingest, "ingest.batch")
	defer func() { e.tr = nil }()
	out, err := core.DriveBatch(core.BatchDriver{
		Dim: e.cfg.Dim, Window: e.cfg.Window,
		NextID: &e.nextID, LastPos: &e.lastPos, Cur: &e.cur,
		Emit: e.emit, Insert: e.insertSegment,
		ErrDim:   func(got, want int) error { return errDim(got, want) },
		ErrOrder: func(pos, last int64) error { return errOrder(pos, last) },
	}, pts, tss)
	core.FinishBatchTrace(e.tr, len(pts), len(out), err)
	return out, err
}

func (e *Extractor) insertSegment(seg []core.BatchEntry) {
	n := len(seg)
	workers := par.DefaultWorkers(e.cfg.Workers)
	if n < 2 || workers == 1 {
		// Sequential fallback: no phase split, recorded under apply (the
		// same attribution core's fallback uses).
		sp := e.tr.Start("apply")
		start := time.Now()
		for _, t := range seg {
			e.insert(t.ID, t.P, t.Pos)
		}
		core.MetricApplySeconds.Observe(time.Since(start))
		sp.SetInt("tuples", int64(n))
		sp.End()
		return
	}
	e.segSeq++
	discoverySpan := e.tr.Start("discovery")
	discoveryStart := time.Now()

	// Phase 0: materialize objects and group the segment by occupied cell
	// in first-touch order.
	objs := make([]*object, n)
	entries := make([]grid.Entry, n)
	existing := make([][]*object, n)
	tupCell := make([]int32, n)
	var cells []segCell
	var coords []grid.Coord
	cellIdx := make(map[grid.Coord]int32, n)
	for k, t := range seg {
		objs[k] = &object{
			id:       t.ID,
			p:        t.P,
			last:     e.cfg.Window.LastWindow(t.Pos),
			coreLast: window.Never,
			tracker:  window.NewCoreTracker(e.cfg.ThetaC),
		}
		entries[k] = grid.Entry{ID: t.ID, P: t.P}
		coord := e.geo.CoordOf(t.P)
		ci, ok := cellIdx[coord]
		if !ok {
			ci = int32(len(cells))
			cellIdx[coord] = ci
			cells = append(cells, segCell{coord: coord})
			coords = append(coords, coord)
		}
		cells[ci].idxs = append(cells[ci].idxs, int32(k))
		tupCell[k] = ci
	}

	// Phase 1a (parallel over cells): per-cell scan and candidate sets.
	par.For(workers, len(cells), func(i int) {
		sc := &cells[i]
		e.ix.CellScan(sc.coord, func(ents []grid.Entry) bool {
			sc.scan = append(sc.scan, ents)
			return true
		})
		for _, j := range e.geo.NeighborIndices(coords, cellIdx, i) {
			sc.cands = append(sc.cands, cells[j].idxs...)
		}
	})

	// Phase 1b (parallel over tuples): discovery + private career
	// construction.
	r2 := e.cfg.ThetaR * e.cfg.ThetaR
	par.For(workers, n, func(k int) {
		o := objs[k]
		p := seg[k].P
		sc := &cells[tupCell[k]]
		var ex []*object
		for _, ents := range sc.scan {
			for i := range ents {
				if geom.DistSq(p, ents[i].P) <= r2 {
					ex = append(ex, e.objs[ents[i].ID])
				}
			}
		}
		existing[k] = ex
		var local []int32
		for _, m := range sc.cands {
			if int(m) != k && geom.DistSq(p, seg[m].P) <= r2 {
				local = append(local, m)
			}
		}
		o.nbrs = make([]*object, 0, len(ex)+len(local))
		for _, q := range ex {
			o.nbrs = append(o.nbrs, q)
			o.tracker.Add(q.last)
		}
		for _, m := range local {
			q := objs[m]
			o.nbrs = append(o.nbrs, q)
			o.tracker.Add(q.last)
		}
		o.coreLast = o.tracker.CoreLast(o.last)
	})
	core.MetricDiscoverySeconds.Observe(time.Since(discoveryStart))
	discoverySpan.SetInt("tuples", int64(n))
	discoverySpan.SetInt("cells", int64(len(cells)))
	discoverySpan.End()
	applySpan := e.tr.Start("apply")
	applyStart := time.Now()

	// Phase 2 (sequential): registration and shared-state career growth,
	// in arrival order.
	type grownEntry struct {
		q   *object
		old int64 // pre-segment core career (lower bound for re-unioning)
	}
	var grown []grownEntry
	for k := range seg {
		o := objs[k]
		e.objs[o.id] = o
		e.expiry[o.last] = append(e.expiry[o.last], o)
		for _, q := range existing[k] {
			q.nbrs = append(q.nbrs, o)
			if q.tracker.Add(o.last) {
				if nl := q.tracker.CoreLast(q.last); nl > q.coreLast {
					if q.grownSeg != e.segSeq {
						q.grownSeg = e.segSeq
						grown = append(grown, grownEntry{q, q.coreLast})
					}
					q.coreLast = nl
				}
			}
		}
	}
	e.ix.BulkInsert(entries)

	// Phase 3 (sequential): per-view union-find maintenance with final
	// careers, once per touched object.
	for _, o := range objs {
		e.unionViews(o, e.cur)
	}
	for _, g := range grown {
		from := g.old + 1
		if from < e.cur {
			from = e.cur
		}
		e.unionViews(g.q, from)
	}
	core.MetricApplySeconds.Observe(time.Since(applyStart))
	applySpan.SetInt("tuples", int64(n))
	applySpan.SetInt("grown", int64(len(grown)))
	applySpan.End()
}
