package extran

import (
	"streamsum/internal/core"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/par"
	"streamsum/internal/window"
)

// Batched ingest for the Extra-N baseline, mirroring core's phased
// pipeline (see internal/core/batch.go for the full rationale): a batch
// is cut into emission-free segments; each segment's range query searches
// and new-object career constructions fan out read-only over the frozen
// PointIndex, intra-segment neighbors are found through a temporary
// per-segment cell map, and all shared-state mutation replays
// sequentially in arrival order. The per-view union-find maintenance —
// Extra-N's distinguishing (and view-count-dependent) cost — defers to
// one unionViews pass per touched object with final careers, which is
// exact for the same reason deferred refresh is in core: the views a pair
// must be joined in form the interval [cur, min of final careers], unions
// are idempotent, and the pre-segment invariant already covers the
// interval up to the pre-segment careers. Keeping the baseline
// batch-capable keeps the paper's §8.1 comparison meaningful at batched
// ingestion rates too.

type batchEntry struct {
	id  int64
	p   geom.Point
	pos int64
}

// segCell mirrors core's per-segment cell grouping: per-cell scan and
// candidate sets computed once and shared by the cell's tuples.
type segCell struct {
	coord grid.Coord
	idxs  []int32        // segment tuple indices located in this cell
	scan  [][]grid.Entry // entry slices of reachable occupied index cells
	cands []int32        // segment tuple indices in CanNeighbor cells
}

// PushBatch feeds a batch of tuples with semantics identical to calling
// Push for each tuple in order; see core.(*Extractor).PushBatch for the
// exact contract (tss, error behavior, emission interleaving).
func (e *Extractor) PushBatch(pts []geom.Point, tss []int64) ([]*core.WindowResult, error) {
	if tss != nil && len(tss) != len(pts) {
		return nil, errTSLen(len(tss), len(pts))
	}
	var out []*core.WindowResult
	seg := make([]batchEntry, 0, len(pts))
	flush := func() {
		if len(seg) > 0 {
			e.insertSegment(seg)
			seg = seg[:0]
		}
	}
	for i, p := range pts {
		if len(p) != e.cfg.Dim {
			flush()
			return out, errDim(len(p), e.cfg.Dim)
		}
		id := e.nextID
		e.nextID++
		pos := id
		if e.cfg.Window.Kind == window.TimeBased {
			pos = 0 // nil tss reads as all-zero timestamps, like Push(p, 0)
			if tss != nil {
				pos = tss[i]
			}
		}
		if pos < e.lastPos {
			flush()
			return out, errOrder(pos, e.lastPos)
		}
		e.lastPos = pos
		if pos >= e.cfg.Window.End(e.cur) {
			flush()
			for pos >= e.cfg.Window.End(e.cur) {
				out = append(out, e.emit())
			}
		}
		if e.cfg.Window.LastWindow(pos) < e.cur {
			continue
		}
		seg = append(seg, batchEntry{id: id, p: p, pos: pos})
	}
	flush()
	return out, nil
}

func (e *Extractor) insertSegment(seg []batchEntry) {
	n := len(seg)
	workers := par.DefaultWorkers(e.cfg.Workers)
	if n < 2 || workers == 1 {
		for _, t := range seg {
			e.insert(t.id, t.p, t.pos)
		}
		return
	}
	e.segSeq++

	// Phase 0: materialize objects and group the segment by occupied cell
	// in first-touch order.
	objs := make([]*object, n)
	entries := make([]grid.Entry, n)
	existing := make([][]*object, n)
	tupCell := make([]int32, n)
	var cells []segCell
	cellIdx := make(map[grid.Coord]int32, n)
	for k, t := range seg {
		objs[k] = &object{
			id:       t.id,
			p:        t.p,
			last:     e.cfg.Window.LastWindow(t.pos),
			coreLast: window.Never,
			tracker:  window.NewCoreTracker(e.cfg.ThetaC),
		}
		entries[k] = grid.Entry{ID: t.id, P: t.p}
		coord := e.geo.CoordOf(t.p)
		ci, ok := cellIdx[coord]
		if !ok {
			ci = int32(len(cells))
			cellIdx[coord] = ci
			cells = append(cells, segCell{coord: coord})
		}
		cells[ci].idxs = append(cells[ci].idxs, int32(k))
		tupCell[k] = ci
	}

	// Phase 1a (parallel over cells): per-cell scan and candidate sets.
	par.For(workers, len(cells), func(i int) {
		sc := &cells[i]
		e.ix.CellScan(sc.coord, func(ents []grid.Entry) bool {
			sc.scan = append(sc.scan, ents)
			return true
		})
		for j := range cells {
			if e.geo.CanNeighbor(sc.coord, cells[j].coord) {
				sc.cands = append(sc.cands, cells[j].idxs...)
			}
		}
	})

	// Phase 1b (parallel over tuples): discovery + private career
	// construction.
	r2 := e.cfg.ThetaR * e.cfg.ThetaR
	par.For(workers, n, func(k int) {
		o := objs[k]
		p := seg[k].p
		sc := &cells[tupCell[k]]
		var ex []*object
		for _, ents := range sc.scan {
			for i := range ents {
				if geom.DistSq(p, ents[i].P) <= r2 {
					ex = append(ex, e.objs[ents[i].ID])
				}
			}
		}
		existing[k] = ex
		var local []int32
		for _, m := range sc.cands {
			if int(m) != k && geom.DistSq(p, seg[m].p) <= r2 {
				local = append(local, m)
			}
		}
		o.nbrs = make([]*object, 0, len(ex)+len(local))
		for _, q := range ex {
			o.nbrs = append(o.nbrs, q)
			o.tracker.Add(q.last)
		}
		for _, m := range local {
			q := objs[m]
			o.nbrs = append(o.nbrs, q)
			o.tracker.Add(q.last)
		}
		o.coreLast = o.tracker.CoreLast(o.last)
	})

	// Phase 2 (sequential): registration and shared-state career growth,
	// in arrival order.
	type grownEntry struct {
		q   *object
		old int64 // pre-segment core career (lower bound for re-unioning)
	}
	var grown []grownEntry
	for k := range seg {
		o := objs[k]
		e.objs[o.id] = o
		e.expiry[o.last] = append(e.expiry[o.last], o)
		for _, q := range existing[k] {
			q.nbrs = append(q.nbrs, o)
			if q.tracker.Add(o.last) {
				if nl := q.tracker.CoreLast(q.last); nl > q.coreLast {
					if q.grownSeg != e.segSeq {
						q.grownSeg = e.segSeq
						grown = append(grown, grownEntry{q, q.coreLast})
					}
					q.coreLast = nl
				}
			}
		}
	}
	e.ix.BulkInsert(entries)

	// Phase 3 (sequential): per-view union-find maintenance with final
	// careers, once per touched object.
	for _, o := range objs {
		e.unionViews(o, e.cur)
	}
	for _, g := range grown {
		from := g.old + 1
		if from < e.cur {
			from = e.cur
		}
		e.unionViews(g.q, from)
	}
}
