package gen

import (
	"testing"

	"streamsum/internal/dbscan"
)

func TestSTTBasics(t *testing.T) {
	b := STT(STTConfig{Seed: 1}, 5000)
	if len(b.Points) != 5000 || len(b.TS) != 5000 {
		t.Fatalf("sizes: %d points, %d ts", len(b.Points), len(b.TS))
	}
	prev := int64(-1)
	for i, p := range b.Points {
		if len(p) != 4 {
			t.Fatalf("point %d has dim %d", i, len(p))
		}
		if p[0] != 0 && p[0] != 1 {
			t.Fatalf("type attribute %g not in {0,1}", p[0])
		}
		if b.TS[i] < prev {
			t.Fatal("timestamps not monotone")
		}
		prev = b.TS[i]
	}
}

func TestSTTDeterministic(t *testing.T) {
	a := STT(STTConfig{Seed: 7}, 1000)
	b := STT(STTConfig{Seed: 7}, 1000)
	for i := range a.Points {
		if !a.Points[i].Equal(b.Points[i]) {
			t.Fatal("same seed produced different streams")
		}
	}
	c := STT(STTConfig{Seed: 8}, 1000)
	same := true
	for i := range a.Points {
		if !a.Points[i].Equal(c.Points[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSTTProducesClusters(t *testing.T) {
	// The paper's case-2 parameters (θr=0.1, θc=8) must find
	// intensive-transaction clusters in a 10K window.
	b := STT(STTConfig{Seed: 3}, 10000)
	ids := make([]int64, len(b.Points))
	for i := range ids {
		ids[i] = int64(i)
	}
	res, err := dbscan.Run(b.Points, ids, dbscan.Params{ThetaR: 0.1, ThetaC: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) < 3 {
		t.Fatalf("only %d clusters in a 10K STT window", len(res.Clusters))
	}
	clustered := 0
	for _, c := range res.Clusters {
		clustered += len(c.Members)
	}
	if frac := float64(clustered) / float64(len(b.Points)); frac < 0.2 || frac > 0.99 {
		t.Fatalf("clustered fraction %.2f implausible", frac)
	}
}

func TestGMTIBasics(t *testing.T) {
	b := GMTI(GMTIConfig{Seed: 1}, 5000)
	if len(b.Points) != 5000 {
		t.Fatalf("size %d", len(b.Points))
	}
	for _, p := range b.Points {
		if len(p) != 2 {
			t.Fatal("default GMTI should be 2-D")
		}
		if p[0] < -10 || p[0] > 110 || p[1] < -10 || p[1] > 110 {
			t.Fatalf("point %v far outside region", p)
		}
	}
	b4 := GMTI(GMTIConfig{Dim: 4, Seed: 1}, 100)
	for _, p := range b4.Points {
		if len(p) != 4 {
			t.Fatal("Dim 4 ignored")
		}
		if p[2] < -50 || p[2] > 350 {
			t.Fatalf("speed %g outside plausible mph range", p[2])
		}
	}
}

func TestGMTIProducesMovingClusters(t *testing.T) {
	b := GMTI(GMTIConfig{Seed: 2}, 12000)
	ids := make([]int64, 4000)
	for i := range ids {
		ids[i] = int64(i)
	}
	// First window.
	res1, err := dbscan.Run(b.Points[:4000], ids, dbscan.Params{ThetaR: 1.0, ThetaC: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Clusters) < 2 {
		t.Fatalf("only %d clusters in first GMTI window", len(res1.Clusters))
	}
	// A later window should still have clusters (convoys persist).
	res2, err := dbscan.Run(b.Points[8000:12000], ids, dbscan.Params{ThetaR: 1.0, ThetaC: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Clusters) < 2 {
		t.Fatalf("only %d clusters in later GMTI window", len(res2.Clusters))
	}
}

func TestExtend(t *testing.T) {
	b := STT(STTConfig{Seed: 4}, 2000)
	e := Extend(b, 7000, 0.01, 99)
	if len(e.Points) != 7000 || len(e.TS) != 7000 {
		t.Fatalf("extended size %d/%d", len(e.Points), len(e.TS))
	}
	// Original prefix unchanged.
	for i := 0; i < 2000; i++ {
		if !e.Points[i].Equal(b.Points[i]) {
			t.Fatal("Extend modified the original prefix")
		}
	}
	// Appended rounds are perturbed, not identical.
	identical := true
	for i := 0; i < 2000 && 2000+i < 7000; i++ {
		if !e.Points[2000+i].Equal(b.Points[i]) {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("appended round not perturbed")
	}
	// Timestamps stay monotone across rounds.
	for i := 1; i < len(e.TS); i++ {
		if e.TS[i] < e.TS[i-1] {
			t.Fatal("Extend broke timestamp monotonicity")
		}
	}
	// No-ops.
	if got := Extend(b, 1000, 0.01, 1); len(got.Points) != 2000 {
		t.Fatal("Extend should not shrink")
	}
	if got := Extend(Batch{}, 100, 0.01, 1); len(got.Points) != 0 {
		t.Fatal("Extend of empty batch should be empty")
	}
}

func TestBatchAppend(t *testing.T) {
	a := STT(STTConfig{Seed: 5}, 500)
	c := STT(STTConfig{Seed: 6}, 500)
	n := len(a.Points)
	a.Append(c)
	if len(a.Points) != n+500 {
		t.Fatalf("append size %d", len(a.Points))
	}
	for i := 1; i < len(a.TS); i++ {
		if a.TS[i] < a.TS[i-1] {
			t.Fatal("Append broke monotonicity")
		}
	}
}
