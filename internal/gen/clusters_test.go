package gen

import (
	"testing"

	"streamsum/internal/dbscan"
)

func TestClustersShapesAndDeterminism(t *testing.T) {
	cs := Clusters(ClustersConfig{Seed: 1}, 10)
	if len(cs) != 10 {
		t.Fatalf("%d clusters", len(cs))
	}
	seen := map[ShapeFamily]int{}
	for i, c := range cs {
		if len(c.Points) < 150 {
			t.Fatalf("cluster %d has %d points", i, len(c.Points))
		}
		for _, p := range c.Points {
			if len(p) != 2 {
				t.Fatal("default dim should be 2")
			}
		}
		seen[c.Shape]++
	}
	// Cycling through families: all five present in 10 clusters.
	if len(seen) != int(numShapes) {
		t.Fatalf("only %d shape families in %v", len(seen), seen)
	}
	// Determinism.
	cs2 := Clusters(ClustersConfig{Seed: 1}, 10)
	for i := range cs {
		if len(cs[i].Points) != len(cs2[i].Points) || !cs[i].Points[0].Equal(cs2[i].Points[0]) {
			t.Fatal("same seed differs")
		}
	}
}

func TestClustersFormDensityClusters(t *testing.T) {
	// Every generated shape must actually be a density-based cluster at
	// the matching parameters (θr=0.8, θc=5): the largest DBSCAN cluster
	// should capture most of the points.
	cs := Clusters(ClustersConfig{Seed: 2}, int(numShapes))
	for _, c := range cs {
		ids := make([]int64, len(c.Points))
		for i := range ids {
			ids[i] = int64(i)
		}
		res, err := dbscan.Run(c.Points, ids, dbscan.Params{ThetaR: 0.8, ThetaC: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Clusters) == 0 {
			t.Fatalf("shape %v produced no cluster", c.Shape)
		}
		best := 0
		for i, cl := range res.Clusters {
			if len(cl.Members) > len(res.Clusters[best].Members) {
				best = i
			}
		}
		frac := float64(len(res.Clusters[best].Members)) / float64(len(c.Points))
		if frac < 0.5 {
			t.Fatalf("shape %v: largest cluster only %.0f%% of points", c.Shape, frac*100)
		}
	}
}

func TestClusters4D(t *testing.T) {
	cs := Clusters(ClustersConfig{Seed: 3, Dim: 4}, 5)
	for _, c := range cs {
		for _, p := range c.Points {
			if len(p) != 4 {
				t.Fatal("dim 4 ignored")
			}
		}
	}
}

func TestPerturb(t *testing.T) {
	src := Clusters(ClustersConfig{Seed: 4}, 1)[0]
	p := Perturb(src, 0.1, 5, 99)
	if p.Shape != src.Shape {
		t.Fatal("shape lost")
	}
	// ~5% dropped.
	if len(p.Points) >= len(src.Points) || len(p.Points) < len(src.Points)*8/10 {
		t.Fatalf("perturbed size %d of %d", len(p.Points), len(src.Points))
	}
	// Deterministic given seed.
	p2 := Perturb(src, 0.1, 5, 99)
	if len(p.Points) != len(p2.Points) || !p.Points[0].Equal(p2.Points[0]) {
		t.Fatal("perturbation not deterministic")
	}
	// Points actually moved.
	if p.Points[0].Equal(src.Points[0]) {
		t.Fatal("no jitter applied")
	}
}

func TestShapeFamilyString(t *testing.T) {
	for s, want := range map[ShapeFamily]string{
		ShapeBlob: "blob", ShapeElongated: "elongated", ShapeRing: "ring",
		ShapeTwoLobe: "two-lobe", ShapeBend: "bend", ShapeFamily(99): "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
