package gen

import (
	"math"
	"math/rand"

	"streamsum/internal/geom"
)

// ClustersConfig parameterizes the standalone cluster-set generator used
// by the matching experiments (Figs. 8-9): the pattern base is populated
// with clusters of varied shape families so that matching quality is
// measurable (a base of identical blobs would make every method look
// perfect).
type ClustersConfig struct {
	// Dim is the dimensionality (2..4 supported; extra dims get small
	// independent spreads). Default 2.
	Dim int
	// MinPoints/MaxPoints bound each cluster's member count
	// (defaults 150/600).
	MinPoints, MaxPoints int
	// Region is the placement range per dimension (default 200).
	Region float64
	// Seed makes generation reproducible.
	Seed int64
}

func (c *ClustersConfig) defaults() {
	if c.Dim < 2 {
		c.Dim = 2
	}
	if c.MinPoints <= 0 {
		c.MinPoints = 150
	}
	if c.MaxPoints <= c.MinPoints {
		c.MaxPoints = c.MinPoints + 450
	}
	if c.Region <= 0 {
		c.Region = 200
	}
}

// ShapeFamily identifies the generator family of one cluster.
type ShapeFamily int

// The shape families: compact blobs, elongated streaks, rings (clusters
// with a hole — the structure CRD cannot see), multi-lobe clusters
// (two dense lobes connected by a thin bridge — connectivity structure),
// and L-bends.
const (
	ShapeBlob ShapeFamily = iota
	ShapeElongated
	ShapeRing
	ShapeTwoLobe
	ShapeBend
	numShapes
)

// String implements fmt.Stringer.
func (s ShapeFamily) String() string {
	switch s {
	case ShapeBlob:
		return "blob"
	case ShapeElongated:
		return "elongated"
	case ShapeRing:
		return "ring"
	case ShapeTwoLobe:
		return "two-lobe"
	case ShapeBend:
		return "bend"
	default:
		return "unknown"
	}
}

// GeneratedCluster is one synthetic cluster with its provenance.
type GeneratedCluster struct {
	Points []geom.Point
	Shape  ShapeFamily
}

// Clusters generates n independent cluster-shaped point sets cycling
// through the shape families.
func Clusters(cfg ClustersConfig, n int) []GeneratedCluster {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]GeneratedCluster, n)
	for i := range out {
		shape := ShapeFamily(i % int(numShapes))
		out[i] = GeneratedCluster{
			Shape:  shape,
			Points: oneCluster(rng, cfg, shape),
		}
	}
	return out
}

// Perturb returns a jittered, translated copy of a cluster — the "newly
// detected cluster resembling an archived one" used as a to-be-matched
// target in the quality study. jitter is per-coordinate noise; shift is
// the translation magnitude.
func Perturb(c GeneratedCluster, jitter, shift float64, seed int64) GeneratedCluster {
	rng := rand.New(rand.NewSource(seed))
	dim := len(c.Points[0])
	delta := make(geom.Point, dim)
	for d := range delta {
		delta[d] = (rng.Float64()*2 - 1) * shift
	}
	pts := make([]geom.Point, 0, len(c.Points))
	for _, p := range c.Points {
		// Drop ~5% of members and jitter the rest.
		if rng.Float64() < 0.05 {
			continue
		}
		q := p.Add(delta)
		for d := range q {
			q[d] += rng.NormFloat64() * jitter
		}
		pts = append(pts, q)
	}
	return GeneratedCluster{Points: pts, Shape: c.Shape}
}

func oneCluster(rng *rand.Rand, cfg ClustersConfig, shape ShapeFamily) []geom.Point {
	n := cfg.MinPoints + rng.Intn(cfg.MaxPoints-cfg.MinPoints)
	center := make(geom.Point, cfg.Dim)
	for d := range center {
		center[d] = rng.Float64() * cfg.Region
	}
	pts := make([]geom.Point, 0, n)
	emit := func(x, y float64) {
		p := make(geom.Point, cfg.Dim)
		p[0] = center[0] + x
		p[1] = center[1] + y
		for d := 2; d < cfg.Dim; d++ {
			p[d] = center[d] + rng.NormFloat64()*0.5
		}
		pts = append(pts, p)
	}
	switch shape {
	case ShapeBlob:
		sx := 0.8 + rng.Float64()*1.5
		sy := 0.8 + rng.Float64()*1.5
		for i := 0; i < n; i++ {
			emit(rng.NormFloat64()*sx, rng.NormFloat64()*sy)
		}
	case ShapeElongated:
		length := 6 + rng.Float64()*8
		width := 0.3 + rng.Float64()*0.5
		angle := rng.Float64() * math.Pi
		cos, sin := math.Cos(angle), math.Sin(angle)
		for i := 0; i < n; i++ {
			u := (rng.Float64() - 0.5) * length
			v := rng.NormFloat64() * width
			emit(u*cos-v*sin, u*sin+v*cos)
		}
	case ShapeRing:
		// Radius bounded so the ring's linear density stays above the
		// clustering threshold even for the smallest point counts.
		r := 1.8 + rng.Float64()*1.2
		width := 0.25 + rng.Float64()*0.3
		for i := 0; i < n; i++ {
			a := rng.Float64() * 2 * math.Pi
			rr := r + rng.NormFloat64()*width
			emit(rr*math.Cos(a), rr*math.Sin(a))
		}
	case ShapeTwoLobe:
		sep := 4 + rng.Float64()*3
		s1 := 0.8 + rng.Float64()
		s2 := 0.8 + rng.Float64()
		for i := 0; i < n; i++ {
			switch {
			case i%10 == 0: // thin bridge
				emit((rng.Float64()-0.5)*sep, rng.NormFloat64()*0.25)
			case i%2 == 0:
				emit(-sep/2+rng.NormFloat64()*s1, rng.NormFloat64()*s1)
			default:
				emit(sep/2+rng.NormFloat64()*s2, rng.NormFloat64()*s2)
			}
		}
	case ShapeBend:
		arm := 4 + rng.Float64()*4
		width := 0.4 + rng.Float64()*0.4
		for i := 0; i < n; i++ {
			u := rng.Float64() * arm
			v := rng.NormFloat64() * width
			if i%2 == 0 {
				emit(u, v)
			} else {
				emit(v, u)
			}
		}
	}
	return pts
}
