// Package gen synthesizes the two streaming workloads of the paper's
// evaluation (§8), which use data we cannot redistribute:
//
//   - GMTI: the Ground Moving Target Indicator feed from JointSTARS [6] —
//     ~100K records of vehicles and helicopters (0-200 mph) observed by 24
//     ground stations over a geographic region. Replaced by a moving-object
//     simulator whose convoys produce arbitrarily shaped, drifting,
//     merging and splitting density clusters.
//
//   - STT: the INET Stock Trade Traces [11] — 1M transaction records over
//     a trading day, clustered on (transaction type, price, volume, time).
//     Replaced by a bursty trade simulator in which "intensive-transaction
//     areas" (price/time-local bursts per symbol) form density clusters.
//
// Both generators are deterministic given a seed, and both implement the
// paper's data-scaling protocol: "for experiments that involve data sets
// larger than these two datasets, we append multiple rounds of the
// original data varied by setting random differences on all attributes"
// (Extend).
package gen

import (
	"math"
	"math/rand"

	"streamsum/internal/geom"
)

// Batch is a generated stream prefix: points with timestamps (ticks).
type Batch struct {
	Points []geom.Point
	TS     []int64
}

// Append concatenates another batch (timestamps are shifted to continue
// monotonically).
func (b *Batch) Append(o Batch) {
	var shift int64
	if len(b.TS) > 0 && len(o.TS) > 0 {
		shift = b.TS[len(b.TS)-1] + 1 - o.TS[0]
	}
	b.Points = append(b.Points, o.Points...)
	for _, ts := range o.TS {
		b.TS = append(b.TS, ts+shift)
	}
}

// Extend implements the paper's scaling trick: the batch is grown to
// target tuples by appending perturbed copies of itself, each attribute
// varied by a random difference up to jitter (absolute units).
func Extend(b Batch, target int, jitter float64, seed int64) Batch {
	if len(b.Points) == 0 || target <= len(b.Points) {
		return b
	}
	rng := rand.New(rand.NewSource(seed))
	out := Batch{
		Points: append([]geom.Point(nil), b.Points...),
		TS:     append([]int64(nil), b.TS...),
	}
	n := len(b.Points)
	span := b.TS[n-1] - b.TS[0] + 1
	round := int64(1)
	for len(out.Points) < target {
		for i := 0; i < n && len(out.Points) < target; i++ {
			p := b.Points[i].Clone()
			for d := range p {
				p[d] += (rng.Float64()*2 - 1) * jitter
			}
			out.Points = append(out.Points, p)
			out.TS = append(out.TS, b.TS[i]+round*span)
		}
		round++
	}
	return out
}

// --- STT: stock trade traces ------------------------------------------------

// STTConfig parameterizes the synthetic stock-trade stream.
type STTConfig struct {
	// Symbols is the number of traded stocks (default 40).
	Symbols int
	// BurstProb is the per-tick probability that a symbol enters an
	// intensive-trading regime (default 0.01).
	BurstProb float64
	// BurstLen is the expected burst length in trades (default 120).
	BurstLen int
	// Seed makes the stream reproducible.
	Seed int64
}

func (c *STTConfig) defaults() {
	if c.Symbols <= 0 {
		c.Symbols = 40
	}
	if c.BurstProb <= 0 {
		c.BurstProb = 0.01
	}
	if c.BurstLen <= 0 {
		c.BurstLen = 120
	}
}

// STT generates n trade records as 4-dimensional points
// (type, price, volume, time):
//
//	type   — 0.0 buy / 1.0 sell (a categorical split: trades of opposite
//	         type are never θr-neighbors for the paper's θr settings),
//	price  — normalized log-price in ~[0, 1.5], random-walking per symbol,
//	volume — normalized trade size in [0, 1],
//	time   — the trade's tick scaled by 1/1000 (a 10K-tuple window spans a
//	         few time units, so bursts are time-local dense regions).
//
// Background trades are diffuse; burst-regime trades concentrate in type,
// price and time — these form the "intensive-transaction areas" the
// paper's queries detect.
func STT(cfg STTConfig, n int) Batch {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	type symbol struct {
		price    float64 // normalized log price
		burst    int     // remaining burst trades (0 = quiet)
		burstVol float64
		burstTyp float64
	}
	syms := make([]symbol, cfg.Symbols)
	for i := range syms {
		syms[i].price = rng.Float64() * 1.5
	}

	b := Batch{Points: make([]geom.Point, 0, n), TS: make([]int64, 0, n)}
	tick := int64(0)
	for len(b.Points) < n {
		tick++
		// Symbols drift; bursts start at random.
		for s := range syms {
			syms[s].price += rng.NormFloat64() * 0.0004
			if syms[s].price < 0 {
				syms[s].price = 0
			}
			if syms[s].burst == 0 && rng.Float64() < cfg.BurstProb {
				syms[s].burst = cfg.BurstLen/2 + rng.Intn(cfg.BurstLen)
				syms[s].burstVol = 0.2 + rng.Float64()*0.6
				syms[s].burstTyp = float64(rng.Intn(2))
			}
		}
		// Emit trades this tick: every bursting symbol trades heavily,
		// plus sparse background activity.
		for s := range syms {
			sym := &syms[s]
			if sym.burst > 0 {
				trades := 2 + rng.Intn(4)
				for t := 0; t < trades && len(b.Points) < n; t++ {
					sym.burst--
					b.Points = append(b.Points, geom.Point{
						sym.burstTyp,
						sym.price + rng.NormFloat64()*0.004,
						sym.burstVol + rng.NormFloat64()*0.015,
						float64(tick) / 1000,
					})
					b.TS = append(b.TS, tick)
					if sym.burst == 0 {
						break
					}
				}
			} else if rng.Float64() < 0.08 && len(b.Points) < n {
				b.Points = append(b.Points, geom.Point{
					float64(rng.Intn(2)),
					rng.Float64() * 1.5,
					rng.Float64(),
					float64(tick) / 1000,
				})
				b.TS = append(b.TS, tick)
			}
		}
	}
	return b
}

// --- GMTI: ground moving target indicator ------------------------------------

// GMTIConfig parameterizes the synthetic moving-object stream.
type GMTIConfig struct {
	// Stations is the number of observation stations (default 24, as in
	// the JointSTARS deployment the paper's dataset came from).
	Stations int
	// Convoys is the number of coherently moving vehicle groups
	// (default 8).
	Convoys int
	// Dim is 2 for (x, y) or 4 for (x, y, speed, heading). Default 2.
	Dim int
	// Region is the side length of the observed square region in
	// kilometers (default 100).
	Region float64
	// Seed makes the stream reproducible.
	Seed int64
}

func (c *GMTIConfig) defaults() {
	if c.Stations <= 0 {
		c.Stations = 24
	}
	if c.Convoys <= 0 {
		c.Convoys = 8
	}
	if c.Dim != 4 {
		c.Dim = 2
	}
	if c.Region <= 0 {
		c.Region = 100
	}
}

// GMTI generates n position reports. Convoys (vehicle groups) move with
// shared velocity that slowly turns; individual vehicles jitter around the
// convoy center, so the reports of one scan form an arbitrarily shaped
// dense region per convoy — the paper's congestion/troop-movement
// clusters. Some reports are lone vehicles (noise). Speeds range up to
// 200 mph ≈ 0.09 km/tick at one scan per second.
func GMTI(cfg GMTIConfig, n int) Batch {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	type convoy struct {
		x, y    float64
		heading float64
		speed   float64 // km per tick
		size    int
		spread  float64
	}
	convoys := make([]convoy, cfg.Convoys)
	for i := range convoys {
		convoys[i] = convoy{
			x:       rng.Float64() * cfg.Region,
			y:       rng.Float64() * cfg.Region,
			heading: rng.Float64() * 2 * math.Pi,
			speed:   0.01 + rng.Float64()*0.08,
			size:    6 + rng.Intn(20),
			spread:  0.4 + rng.Float64()*1.2,
		}
	}

	b := Batch{Points: make([]geom.Point, 0, n), TS: make([]int64, 0, n)}
	tick := int64(0)
	for len(b.Points) < n {
		tick++
		for ci := range convoys {
			cv := &convoys[ci]
			cv.heading += rng.NormFloat64() * 0.05
			cv.x += math.Cos(cv.heading) * cv.speed
			cv.y += math.Sin(cv.heading) * cv.speed
			// Bounce off the region boundary.
			if cv.x < 0 || cv.x > cfg.Region {
				cv.heading = math.Pi - cv.heading
				cv.x = math.Min(math.Max(cv.x, 0), cfg.Region)
			}
			if cv.y < 0 || cv.y > cfg.Region {
				cv.heading = -cv.heading
				cv.y = math.Min(math.Max(cv.y, 0), cfg.Region)
			}
			for v := 0; v < cv.size && len(b.Points) < n; v++ {
				px := cv.x + rng.NormFloat64()*cv.spread
				py := cv.y + rng.NormFloat64()*cv.spread
				b.Points = append(b.Points, gmtiPoint(cfg, px, py, cv.speed, cv.heading, rng))
				b.TS = append(b.TS, tick)
			}
		}
		// Lone vehicles (noise) from random stations.
		lone := rng.Intn(cfg.Stations / 4)
		for v := 0; v < lone && len(b.Points) < n; v++ {
			b.Points = append(b.Points, gmtiPoint(cfg,
				rng.Float64()*cfg.Region, rng.Float64()*cfg.Region,
				rng.Float64()*0.09, rng.Float64()*2*math.Pi, rng))
			b.TS = append(b.TS, tick)
		}
	}
	return b
}

func gmtiPoint(cfg GMTIConfig, x, y, speed, heading float64, rng *rand.Rand) geom.Point {
	if cfg.Dim == 4 {
		// Speed in mph (0-200), heading scaled to a comparable range.
		return geom.Point{x, y, speed/0.09*200 + rng.NormFloat64()*5, heading * 30}
	}
	return geom.Point{x, y}
}
