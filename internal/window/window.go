// Package window implements the periodic sliding-window semantics of CQL
// (Arasu et al.) used by the paper (§3.1), together with the lifespan
// analysis of §5.3 (Observations 5.2–5.4) that C-SGS builds on.
//
// A window specification has a fixed window size Win and slide size Slide,
// both expressed in the same unit: tuple counts for count-based windows or
// abstract time ticks for time-based windows. Window W_n covers the
// half-open interval [n·Slide, n·Slide+Win) of that unit. Because every
// quantity here is an int64 "position" (a tuple sequence number or a
// timestamp tick), the count-based and time-based cases share one
// implementation; only the position assigned to each tuple differs.
//
// The key insight the paper exploits is that in sliding windows both object
// lifespans and neighborship lifespans are deterministic at arrival time,
// so all expiry-driven maintenance can be pre-computed at insertion.
package window

import (
	"fmt"
	"math"
)

// Kind selects between count-based and time-based windows.
type Kind int

const (
	// CountBased windows measure Win and Slide in tuple counts; a tuple's
	// position is its arrival sequence number.
	CountBased Kind = iota
	// TimeBased windows measure Win and Slide in time ticks; a tuple's
	// position is its timestamp.
	TimeBased
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CountBased:
		return "count"
	case TimeBased:
		return "time"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Never is the window index returned when an event never happens (e.g. the
// core career of an object that never attains θc neighbors). It is smaller
// than every valid window index.
const Never int64 = math.MinInt64

// Spec is a periodic sliding-window specification.
type Spec struct {
	Kind  Kind
	Win   int64 // window extent (tuples or ticks), > 0
	Slide int64 // slide extent (tuples or ticks), > 0, <= Win
}

// Validate reports whether the specification is usable.
func (s Spec) Validate() error {
	if s.Win <= 0 {
		return fmt.Errorf("window: win must be positive, got %d", s.Win)
	}
	if s.Slide <= 0 {
		return fmt.Errorf("window: slide must be positive, got %d", s.Slide)
	}
	if s.Slide > s.Win {
		return fmt.Errorf("window: slide %d larger than win %d (gaps between windows are unsupported)", s.Slide, s.Win)
	}
	return nil
}

// Views returns the number of concurrently open windows any single position
// belongs to: ceil(Win/Slide). The paper calls these "views"; Extra-N's
// maintenance cost grows with this number while C-SGS's does not (§8.1).
func (s Spec) Views() int {
	return int((s.Win + s.Slide - 1) / s.Slide)
}

// Start returns the first position covered by window n.
func (s Spec) Start(n int64) int64 { return n * s.Slide }

// End returns the position one past the last covered by window n.
func (s Spec) End(n int64) int64 { return n*s.Slide + s.Win }

// floorDiv is floor division for possibly-negative numerators.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// LastWindow returns the index of the last window that covers position t:
// the largest n with n·Slide <= t, i.e. floor(t/Slide). Together with
// FirstWindow it realizes Observation 5.2: the lifespan of an object is
// fully determined by its position.
func (s Spec) LastWindow(t int64) int64 { return floorDiv(t, s.Slide) }

// FirstWindow returns the index of the first window that covers position t
// (clamped at 0, the first window of the stream).
func (s Spec) FirstWindow(t int64) int64 {
	n := floorDiv(t-s.Win, s.Slide) + 1
	if n < 0 {
		n = 0
	}
	return n
}

// Covers reports whether window n covers position t.
func (s Spec) Covers(n, t int64) bool {
	return s.Start(n) <= t && t < s.End(n)
}

// Lifespan returns how many windows, starting from the current window cur,
// the position t will still participate in (Observation 5.2). A tuple that
// is already expired has lifespan 0.
func (s Spec) Lifespan(t, cur int64) int64 {
	l := s.LastWindow(t) - cur + 1
	if l < 0 {
		return 0
	}
	return l
}

// NeighborLastWindow returns the last window in which a neighborship
// between objects with positions ta and tb holds (Observation 5.3): the
// minimum of the two objects' last windows.
func (s Spec) NeighborLastWindow(ta, tb int64) int64 {
	la, lb := s.LastWindow(ta), s.LastWindow(tb)
	if la < lb {
		return la
	}
	return lb
}
