package window

import (
	"math/rand"
	"testing"
)

// BenchmarkCoreTrackerAdd measures the per-neighbor cost of the incremental
// core-career tracker — the inner loop of every insertion in both C-SGS
// and Extra-N.
func BenchmarkCoreTrackerAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lasts := make([]int64, 4096)
	for i := range lasts {
		lasts[i] = int64(rng.Intn(1000))
	}
	b.ResetTimer()
	tr := NewCoreTracker(8)
	for n := 0; n < b.N; n++ {
		tr.Add(lasts[n%len(lasts)])
		if n%1024 == 1023 { // periodically restart to keep the heap churning
			tr = NewCoreTracker(8)
		}
	}
}

// BenchmarkLifespanMath measures the pure window arithmetic of
// Observation 5.2.
func BenchmarkLifespanMath(b *testing.B) {
	s := Spec{Win: 10000, Slide: 1000}
	var sink int64
	for n := 0; n < b.N; n++ {
		pos := int64(n % 1000000)
		sink += s.LastWindow(pos) + s.FirstWindow(pos)
	}
	_ = sink
}
