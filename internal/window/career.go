package window

// This file implements the object-"career" analysis of Observation 5.4:
// given the deterministic expiry windows of an object's neighbors, the
// windows in which the object will be a *core* object (>= θc live
// neighbors) and the windows in which it will be an *edge* object are
// computable at insertion time.
//
// The object is core in window m iff at least θc of its neighbors are still
// alive in m, i.e. iff the θc-th largest neighbor last-window is >= m.
// CoreTracker maintains exactly that order statistic incrementally: it is a
// bounded min-heap holding the θc largest neighbor last-windows seen so
// far. Adding a neighbor is O(log θc); reading the core career is O(1).
//
// Monotonicity makes this sound under streaming arrivals: neighbors are
// only ever *added* (expiries are pre-accounted by using last-windows), so
// the θc-th largest value — and therefore the predicted core career — only
// ever grows. This is the mechanism behind the paper's "status prolong"
// case (§5.4, Figure 6).

// CoreTracker incrementally tracks the core career of one object.
// The zero value is unusable; use NewCoreTracker.
type CoreTracker struct {
	k    int     // θc
	heap []int64 // min-heap of the k largest neighbor last-windows
}

// NewCoreTracker returns a tracker for count threshold thetaC (>= 1).
func NewCoreTracker(thetaC int) CoreTracker {
	if thetaC < 1 {
		thetaC = 1
	}
	return CoreTracker{k: thetaC, heap: make([]int64, 0, thetaC)}
}

// Add records a neighbor whose last participating window is last.
// It returns true if the tracked core career grew (the caller must then
// propagate the prolong to cell status and connections).
func (t *CoreTracker) Add(last int64) bool {
	h := t.heap
	if len(h) < t.k {
		h = append(h, last)
		// Sift up.
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h[p] <= h[i] {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		t.heap = h
		return len(h) == t.k // career first becomes defined
	}
	if last <= h[0] {
		return false // not among the k largest; career unchanged
	}
	// Replace the minimum and sift down.
	h[0] = last
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return true
}

// Count returns how many neighbors have been recorded, capped at θc.
func (t *CoreTracker) Count() int { return len(t.heap) }

// KthLast returns the θc-th largest neighbor last-window recorded so far,
// or Never if fewer than θc neighbors exist.
func (t *CoreTracker) KthLast() int64 {
	if len(t.heap) < t.k {
		return Never
	}
	return t.heap[0]
}

// CoreLast returns the last window in which the object is a core object,
// given the object's own last window (Observation 5.4): the minimum of the
// object's own expiry and the θc-th largest neighbor expiry, or Never if it
// never attains θc neighbors.
func (t *CoreTracker) CoreLast(ownLast int64) int64 {
	k := t.KthLast()
	if k == Never {
		return Never
	}
	if ownLast < k {
		return ownLast
	}
	return k
}

// CoreLast is the batch (non-incremental) form of CoreTracker: it returns
// the last core window of an object with expiry ownLast whose neighbors
// expire at neighborLasts, under count threshold thetaC. It is used by
// tests as an oracle against the incremental tracker.
func CoreLast(ownLast int64, neighborLasts []int64, thetaC int) int64 {
	t := NewCoreTracker(thetaC)
	for _, l := range neighborLasts {
		t.Add(l)
	}
	return t.CoreLast(ownLast)
}

// EdgeLast returns the last window in which an object can be an edge object
// (Observation 5.4): it must itself be alive and have at least one neighbor
// that is still core. neighborCoreLasts holds the core careers of its
// neighbors. Windows in (coreLast, edgeLast] are the edge career.
func EdgeLast(ownLast int64, neighborCoreLasts []int64) int64 {
	best := Never
	for _, l := range neighborCoreLasts {
		if l > best {
			best = l
		}
	}
	if best == Never {
		return Never
	}
	if ownLast < best {
		return ownLast
	}
	return best
}
