package window

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{CountBased, 10, 5}, true},
		{Spec{CountBased, 10, 10}, true},
		{Spec{CountBased, 10, 11}, false},
		{Spec{CountBased, 0, 1}, false},
		{Spec{CountBased, 10, 0}, false},
		{Spec{TimeBased, -1, 1}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestViews(t *testing.T) {
	cases := []struct {
		win, slide int64
		want       int
	}{
		{10000, 1000, 10},
		{10000, 100, 100},
		{10000, 5000, 2},
		{10000, 10000, 1},
		{10000, 3000, 4}, // ceil(10/3)
	}
	for _, c := range cases {
		s := Spec{CountBased, c.win, c.slide}
		if got := s.Views(); got != c.want {
			t.Errorf("Views(%d/%d) = %d, want %d", c.win, c.slide, got, c.want)
		}
	}
}

func TestWindowCoverage(t *testing.T) {
	s := Spec{CountBased, 10, 4}
	// Window 0 covers [0,10), window 1 covers [4,14), window 2 [8,18).
	if s.Start(1) != 4 || s.End(1) != 14 {
		t.Fatalf("window 1 bounds wrong: [%d,%d)", s.Start(1), s.End(1))
	}
	if !s.Covers(0, 0) || !s.Covers(0, 9) || s.Covers(0, 10) {
		t.Error("window 0 coverage wrong")
	}
	if !s.Covers(1, 4) || s.Covers(1, 3) {
		t.Error("window 1 coverage wrong")
	}
}

func TestFirstLastWindowConsistency(t *testing.T) {
	// Exhaustive check on a small spec: FirstWindow/LastWindow must agree
	// with the Covers predicate.
	specs := []Spec{
		{CountBased, 10, 4},
		{CountBased, 10, 10},
		{CountBased, 7, 3},
		{CountBased, 12, 1},
	}
	for _, s := range specs {
		for pos := int64(0); pos < 60; pos++ {
			first, last := s.FirstWindow(pos), s.LastWindow(pos)
			if first > last {
				t.Fatalf("%+v pos %d: first %d > last %d", s, pos, first, last)
			}
			for n := int64(0); n < 70; n++ {
				want := s.Covers(n, pos)
				got := n >= first && n <= last
				if want != got {
					t.Fatalf("%+v pos %d window %d: covers=%v but range says %v", s, pos, n, want, got)
				}
			}
		}
	}
}

func TestLifespan(t *testing.T) {
	s := Spec{CountBased, 10000, 1000}
	// A tuple at position 9999 arriving into window 0 lives 10 windows.
	if got := s.Lifespan(9999, 0); got != 10 {
		t.Errorf("Lifespan(9999, 0) = %d, want 10", got)
	}
	// The first tuple of window 0 lives exactly 1 window.
	if got := s.Lifespan(999, 0); got != 1 {
		t.Errorf("Lifespan(999, 0) = %d, want 1", got)
	}
	// Expired tuples have lifespan 0.
	if got := s.Lifespan(999, 5); got != 0 {
		t.Errorf("Lifespan(999, 5) = %d, want 0", got)
	}
}

func TestNeighborLastWindow(t *testing.T) {
	s := Spec{CountBased, 10, 2}
	// Observation 5.3: neighborship survives until the earlier expiry.
	if got := s.NeighborLastWindow(7, 15); got != s.LastWindow(7) {
		t.Errorf("NeighborLastWindow = %d, want %d", got, s.LastWindow(7))
	}
	if got := s.NeighborLastWindow(15, 7); got != s.LastWindow(7) {
		t.Error("NeighborLastWindow should be symmetric")
	}
}

func TestTimeBasedSameArithmetic(t *testing.T) {
	// Time-based windows use timestamps; irregular positions are fine.
	s := Spec{TimeBased, 100, 30}
	ts := []int64{0, 5, 29, 30, 95, 99, 100, 130}
	for _, x := range ts {
		first, last := s.FirstWindow(x), s.LastWindow(x)
		for n := first; n <= last; n++ {
			if !s.Covers(n, x) {
				t.Fatalf("ts %d should be covered by window %d", x, n)
			}
		}
		if first > 0 && s.Covers(first-1, x) {
			t.Fatalf("ts %d covered before FirstWindow", x)
		}
		if s.Covers(last+1, x) {
			t.Fatalf("ts %d covered after LastWindow", x)
		}
	}
}

func TestCoreTrackerIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		thetaC := 1 + rng.Intn(6)
		ownLast := int64(rng.Intn(50))
		tr := NewCoreTracker(thetaC)
		var lasts []int64
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			l := int64(rng.Intn(60))
			lasts = append(lasts, l)
			tr.Add(l)
			if got, want := tr.CoreLast(ownLast), CoreLast(ownLast, lasts, thetaC); got != want {
				t.Fatalf("incremental CoreLast=%d batch=%d (θc=%d lasts=%v)", got, want, thetaC, lasts)
			}
		}
	}
}

func TestCoreTrackerSemantics(t *testing.T) {
	// θc = 3; neighbors expiring at windows 5, 9, 2, 7.
	// Sorted descending: 9,7,5,2 → 3rd largest = 5, so the object is core
	// through window 5 (if it lives that long).
	tr := NewCoreTracker(3)
	for _, l := range []int64{5, 9, 2, 7} {
		tr.Add(l)
	}
	if got := tr.CoreLast(100); got != 5 {
		t.Errorf("CoreLast = %d, want 5", got)
	}
	if got := tr.CoreLast(4); got != 4 {
		t.Errorf("CoreLast capped by own expiry = %d, want 4", got)
	}
	// Fewer than θc neighbors → never core.
	tr2 := NewCoreTracker(3)
	tr2.Add(5)
	tr2.Add(9)
	if got := tr2.CoreLast(100); got != Never {
		t.Errorf("CoreLast with <θc neighbors = %d, want Never", got)
	}
}

func TestCoreTrackerProlongSignal(t *testing.T) {
	tr := NewCoreTracker(2)
	if tr.Add(3) {
		t.Error("first add cannot define a career for θc=2")
	}
	if !tr.Add(5) {
		t.Error("career became defined; Add must report growth")
	}
	if tr.Add(1) {
		t.Error("adding a smaller expiry must not grow the career")
	}
	if !tr.Add(9) {
		t.Error("adding a larger expiry must grow the career (prolong)")
	}
	if got := tr.KthLast(); got != 5 {
		t.Errorf("KthLast = %d, want 5 (two largest are 9,5)", got)
	}
}

func TestEdgeLast(t *testing.T) {
	// Neighbors' core careers end at windows 4 and 8; the object lives
	// until window 6 → edge career can last until window 6.
	if got := EdgeLast(6, []int64{4, 8}); got != 6 {
		t.Errorf("EdgeLast = %d, want 6", got)
	}
	// Object outlives all core neighbors → capped by their core careers.
	if got := EdgeLast(20, []int64{4, 8}); got != 8 {
		t.Errorf("EdgeLast = %d, want 8", got)
	}
	if got := EdgeLast(20, nil); got != Never {
		t.Errorf("EdgeLast with no core neighbors = %d, want Never", got)
	}
	if got := EdgeLast(20, []int64{Never, Never}); got != Never {
		t.Errorf("EdgeLast with never-core neighbors = %d, want Never", got)
	}
}

// Property: for random neighbor sets, the core career computed by the
// tracker equals the definition: the largest m <= ownLast such that at
// least θc neighbors have last >= m.
func TestCoreLastDefinition(t *testing.T) {
	f := func(rawLasts []uint8, rawOwn uint8, rawK uint8) bool {
		thetaC := int(rawK%5) + 1
		ownLast := int64(rawOwn % 64)
		lasts := make([]int64, len(rawLasts))
		for i, r := range rawLasts {
			lasts[i] = int64(r % 64)
		}
		got := CoreLast(ownLast, lasts, thetaC)

		// Oracle: scan windows downward from ownLast.
		want := Never
		sorted := append([]int64(nil), lasts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		for m := ownLast; m >= 0; m-- {
			cnt := 0
			for _, l := range sorted {
				if l >= m {
					cnt++
				}
			}
			if cnt >= thetaC {
				want = m
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
