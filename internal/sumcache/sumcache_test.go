package sumcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"streamsum/internal/sgs"
)

// testSummary returns a small distinguishable summary; the cache never
// inspects it, it only needs stable pointers.
func testSummary(id int64) *sgs.Summary {
	return &sgs.Summary{ID: id, Dim: 2}
}

func TestGetOrLoadCachesPerResidency(t *testing.T) {
	c := New(1 << 20)
	if c == nil {
		t.Fatal("New returned a disabled cache for a positive budget")
	}
	owner := new(int)
	loads := 0
	load := func() (*sgs.Summary, error) { loads++; return testSummary(7), nil }
	first, err := c.GetOrLoad(owner, 7, 100, load)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.GetOrLoad(owner, 7, 100, load)
	if err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1", loads)
	}
	if first != again {
		t.Fatal("repeated GetOrLoad returned a different summary pointer")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDistinctOwnersAreDistinctKeys(t *testing.T) {
	c := New(1 << 20)
	a, b := new(int), new(int)
	loads := 0
	for _, o := range []any{a, b} {
		if _, err := c.GetOrLoad(o, 1, 10, func() (*sgs.Summary, error) {
			loads++
			return testSummary(1), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if loads != 2 {
		t.Fatalf("same id under different owners loaded %d times, want 2", loads)
	}
}

func TestEvictionKeepsBytesUnderBudget(t *testing.T) {
	const budget = 8 * 64 // 64 bytes per shard
	c := New(budget)
	// Three entries of 40 bytes landing in the same shard (ids ≡ 0 mod
	// NumShards): the third insert must evict the least recent.
	for i := int64(0); i < 3; i++ {
		id := i * NumShards
		if _, err := c.GetOrLoad("o", id, 40, func() (*sgs.Summary, error) {
			return testSummary(id), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("resident %d bytes exceeds budget %d", st.Bytes, budget)
	}
	if st.Evicted == 0 {
		t.Fatal("over-budget inserts evicted nothing")
	}
	// The survivor set is the most recent one (40 bytes fits, 80 does not).
	if st.Entries != 1 || st.Bytes != 40 {
		t.Fatalf("want 1 resident entry of 40 bytes, got %+v", st)
	}
}

func TestLRUVictimIsLeastRecent(t *testing.T) {
	c := New(8 * 100)
	load := func(id int64) func() (*sgs.Summary, error) {
		return func() (*sgs.Summary, error) { return testSummary(id), nil }
	}
	// Two 50-byte entries fill shard 0; touching the first makes the
	// second the victim when a third arrives.
	mustLoad := func(id int64, wantLoad bool) {
		loaded := false
		if _, err := c.GetOrLoad("o", id, 50, func() (*sgs.Summary, error) {
			loaded = true
			return load(id)()
		}); err != nil {
			t.Fatal(err)
		}
		if loaded != wantLoad {
			t.Fatalf("id %d: loaded=%v want %v", id, loaded, wantLoad)
		}
	}
	mustLoad(0, true)
	mustLoad(NumShards, true)
	mustLoad(0, false)          // refresh 0
	mustLoad(2*NumShards, true) // evicts NumShards, not 0
	mustLoad(0, false)          // still resident
	mustLoad(NumShards, true)   // was evicted
}

func TestOversizeEntryServedUncached(t *testing.T) {
	c := New(8 * 32) // 32 bytes per shard
	loads := 0
	for i := 0; i < 2; i++ {
		sum, err := c.GetOrLoad("o", 3, 1000, func() (*sgs.Summary, error) {
			loads++
			return testSummary(3), nil
		})
		if err != nil || sum == nil {
			t.Fatalf("oversize load %d: sum=%v err=%v", i, sum, err)
		}
	}
	if loads != 2 {
		t.Fatalf("oversize entry loaded %d times, want 2 (never retained)", loads)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize entry left residue: %+v", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	calls := 0
	load := func() (*sgs.Summary, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return testSummary(1), nil
	}
	if _, err := c.GetOrLoad("o", 1, 10, load); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	sum, err := c.GetOrLoad("o", 1, 10, load)
	if err != nil || sum == nil {
		t.Fatalf("retry after error: sum=%v err=%v", sum, err)
	}
	if calls != 2 {
		t.Fatalf("loader ran %d times, want 2", calls)
	}
}

func TestSingleflightDecode(t *testing.T) {
	c := New(1 << 20)
	var loads atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	sums := make([]*sgs.Summary, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sum, err := c.GetOrLoad("o", 9, 10, func() (*sgs.Summary, error) {
				loads.Add(1)
				<-release
				return testSummary(9), nil
			})
			if err != nil {
				panic(err)
			}
			sums[i] = sum
		}(i)
	}
	// Let the flight start, then release every waiter at once.
	close(release)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("concurrent GetOrLoad decoded %d times, want 1", n)
	}
	for i := 1; i < waiters; i++ {
		if sums[i] != sums[0] {
			t.Fatal("waiters received different summary pointers")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Fatalf("stats %+v: want 1 miss, %d hits", st, waiters-1)
	}
}

func TestInvalidateOwner(t *testing.T) {
	c := New(1 << 20)
	a, b := new(int), new(int)
	for i := int64(0); i < 10; i++ {
		owner := any(a)
		if i%2 == 1 {
			owner = b
		}
		if _, err := c.GetOrLoad(owner, i, 10, func() (*sgs.Summary, error) {
			return testSummary(i), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.InvalidateOwner(a)
	st := c.Stats()
	if st.Entries != 5 || st.Bytes != 50 {
		t.Fatalf("after invalidating owner a: %+v", st)
	}
	// Entries of a reload; entries of b still hit.
	loads := 0
	for i := int64(0); i < 10; i++ {
		owner := any(a)
		if i%2 == 1 {
			owner = b
		}
		if _, err := c.GetOrLoad(owner, i, 10, func() (*sgs.Summary, error) {
			loads++
			return testSummary(i), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if loads != 5 {
		t.Fatalf("reloaded %d entries, want the 5 invalidated ones", loads)
	}
}

func TestInvalidateID(t *testing.T) {
	c := New(1 << 20)
	for i := int64(0); i < 4; i++ {
		if _, err := c.GetOrLoad("o", i, 10, func() (*sgs.Summary, error) {
			return testSummary(i), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.InvalidateID(2)
	if st := c.Stats(); st.Entries != 3 || st.Bytes != 30 {
		t.Fatalf("after InvalidateID: %+v", st)
	}
}

func TestDisabledCache(t *testing.T) {
	var c *Cache // nil: the disabled cache
	loads := 0
	for i := 0; i < 2; i++ {
		sum, err := c.GetOrLoad("o", 1, 10, func() (*sgs.Summary, error) {
			loads++
			return testSummary(1), nil
		})
		if err != nil || sum == nil {
			t.Fatalf("nil cache: sum=%v err=%v", sum, err)
		}
	}
	if loads != 2 {
		t.Fatalf("nil cache memoized: %d loads", loads)
	}
	c.InvalidateOwner("o")
	c.InvalidateID(1)
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
	if c.Bytes() != 0 || c.Budget() != 0 {
		t.Fatal("nil cache reports residency")
	}

	if New(0) != nil {
		t.Fatal("zero budget must disable the cache")
	}
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if New(1<<20) != nil {
		t.Fatal("SetEnabled(false) must disable construction")
	}
}

// TestConcurrentChurn hammers one small cache from many goroutines with
// overlapping keys, invalidations and an over-tight budget — run under
// -race in CI. Correctness here is "no race, no panic, budget held".
func TestConcurrentChurn(t *testing.T) {
	c := New(8 * 64)
	owners := [3]any{new(int), new(int), new(int)}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := int64(i % 37)
				owner := owners[i%3]
				sum, err := c.GetOrLoad(owner, id, 40, func() (*sgs.Summary, error) {
					return testSummary(id), nil
				})
				if err != nil || sum == nil || sum.ID != id {
					panic(fmt.Sprintf("g%d i%d: sum=%v err=%v", g, i, sum, err))
				}
				if i%97 == 0 {
					c.InvalidateOwner(owner)
				}
				if i%61 == 0 {
					c.InvalidateID(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 8*64 {
		t.Fatalf("resident bytes %d exceed budget after churn", st.Bytes)
	}
}
