// Package sumcache is the summary-residency layer of the pattern base:
// a sharded, byte-accounted LRU cache of decoded summaries keyed by
// (owner, record id), where the owner is the immutable container the
// record was decoded from (a disk segment). Every disk-resident
// Entry.LoadSummary in internal/archive consults it, so the refine phase
// of one-shot matches, batch novelty probes, standing-query evaluation
// and base dumps all pay one sgs.Unmarshal per residency, not one per
// query.
//
// Contract:
//
//   - Cached summaries are shared by reference between all callers, the
//     same sharing the memory tier's entries already have; they are
//     immutable after decode and must never be mutated.
//   - Loads are singleflight per key: concurrent GetOrLoad calls for the
//     same (owner, id) pay one decode, the rest wait for it.
//   - The byte budget is denominated in encoded summary bytes (the cost
//     argument) — the same unit as the archive's MaxMemBytes — so the
//     memory tier and the cache can share one bound. Resident bytes
//     never exceed the budget: an entry whose cost exceeds its shard's
//     share is served decoded but not retained.
//   - The cache holds a reference to each owner, pinning it (and, for a
//     mapped segment, its mapping) until the entry is evicted or the
//     owner is invalidated. Retiring an owner (compaction, Remove) must
//     call InvalidateOwner/InvalidateID to uncharge its entries.
//   - A nil *Cache is valid and means "disabled": GetOrLoad degrades to
//     calling the loader. New returns nil for a non-positive budget or
//     when SGS_SUMCACHE=off, so the uncached path stays reachable.
//
// The cache only ever changes when a decode happens, never what it
// yields: results are byte-identical with the cache on, off, or
// pathologically small.
package sumcache

import (
	"os"
	"sync"
	"sync/atomic"

	"streamsum/internal/obs"
	"streamsum/internal/sgs"
)

// Process-wide residency counters (obs.Default), aggregated across all
// cache instances; per-instance counts stay in Stats.
var (
	metricHits = obs.NewCounter("sgs_sumcache_hits_total",
		"Decoded-summary cache loads served from residency.")
	metricMisses = obs.NewCounter("sgs_sumcache_misses_total",
		"Decoded-summary cache loads that paid a decode.")
	metricEvictions = obs.NewCounter("sgs_sumcache_evictions_total",
		"Decoded-summary cache entries evicted under byte pressure.")
)

// enabled gates cache construction, mirroring segstore's SGS_MMAP
// toggle: the environment opts out globally, SetEnabled exists for tests
// that must exercise the uncached path deterministically.
var enabled atomic.Bool

func init() {
	enabled.Store(os.Getenv("SGS_SUMCACHE") != "off")
}

// SetEnabled switches whether New constructs caches, returning the
// previous setting. Existing caches are unaffected. Tests only;
// production code should use the SGS_SUMCACHE environment variable.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether New will construct caches.
func Enabled() bool { return enabled.Load() }

// NumShards is the lock striping width; the byte budget is divided
// evenly across shards. Keys shard by record id, which the
// archive assigns sequentially, so consecutive ids — the common access
// pattern of a refine phase walking one segment — spread evenly.
const NumShards = 8

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits    uint64 // GetOrLoad served from residency (including singleflight joins)
	Misses  uint64 // GetOrLoad paid a decode
	Evicted uint64 // entries evicted under byte pressure
	Entries int    // resident decoded summaries
	Bytes   int64  // resident encoded-size charge (<= Budget)
}

type key struct {
	owner any
	id    int64
}

// entry is one cache slot. While done is non-nil the decode is in
// flight: sum/err are written before done closes, so waiters that
// received done under the shard lock read them race-free after <-done.
// Only filled entries are linked into the shard's LRU list.
type entry struct {
	key  key
	cost int64
	sum  *sgs.Summary
	err  error
	done chan struct{}
	// LRU links; nil for in-flight placeholders.
	prev, next *entry
}

// shard is one lock stripe: a map for lookup plus an intrusive LRU list
// (head = most recent) bounded by its slice of the total budget.
type shard struct {
	mu         sync.Mutex
	entries    map[key]*entry
	head, tail *entry
	bytes      int64
	budget     int64
}

// Cache is the residency layer. Safe for concurrent use. The zero value
// is not usable; construct with New. A nil *Cache is a disabled cache:
// every method degrades gracefully.
type Cache struct {
	shards  [NumShards]shard
	budget  int64
	hits    atomic.Uint64
	misses  atomic.Uint64
	evicted atomic.Uint64
}

// New returns a cache bounded by maxBytes of encoded summary charge, or
// nil (the disabled cache) when maxBytes is non-positive or the layer is
// switched off (SGS_SUMCACHE=off / SetEnabled(false)).
func New(maxBytes int) *Cache {
	if maxBytes <= 0 || !enabled.Load() {
		return nil
	}
	c := &Cache{budget: int64(maxBytes)}
	per := int64(maxBytes) / NumShards
	for i := range c.shards {
		c.shards[i].entries = make(map[key]*entry)
		c.shards[i].budget = per
	}
	// Remainder bytes go to shard 0 so the shard budgets sum exactly to
	// the configured bound.
	c.shards[0].budget += int64(maxBytes) % NumShards
	return c
}

// Budget returns the configured byte bound (0 for a disabled cache).
func (c *Cache) Budget() int {
	if c == nil {
		return 0
	}
	return int(c.budget)
}

func (c *Cache) shardFor(id int64) *shard {
	return &c.shards[uint64(id)%NumShards]
}

// GetOrLoad returns the decoded summary for (owner, id), invoking load
// at most once across concurrent callers on a miss. cost is the entry's
// encoded size, charged against the budget while resident. Errors are
// returned but never cached — the next call retries the load.
func (c *Cache) GetOrLoad(owner any, id int64, cost int, load func() (*sgs.Summary, error)) (*sgs.Summary, error) {
	sum, _, err := c.GetOrLoadHit(owner, id, cost, load)
	return sum, err
}

// GetOrLoadHit is GetOrLoad plus a hit report: it additionally returns
// whether the summary was served from residency (including singleflight
// joins) rather than by paying a decode. Per-query tracing uses it to
// attribute cache hits to individual refine phases; a nil (disabled)
// cache always reports a miss.
func (c *Cache) GetOrLoadHit(owner any, id int64, cost int, load func() (*sgs.Summary, error)) (*sgs.Summary, bool, error) {
	if c == nil {
		sum, err := load()
		return sum, false, err
	}
	sh := c.shardFor(id)
	k := key{owner: owner, id: id}
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		if e.done != nil {
			// Join the in-flight decode.
			done := e.done
			sh.mu.Unlock()
			<-done
			if e.err != nil {
				return nil, false, e.err
			}
			c.hits.Add(1)
			metricHits.Inc()
			return e.sum, true, nil
		}
		sh.moveFrontLocked(e)
		sh.mu.Unlock()
		c.hits.Add(1)
		metricHits.Inc()
		return e.sum, true, nil
	}
	e := &entry{key: k, cost: int64(cost), done: make(chan struct{})}
	sh.entries[k] = e
	sh.mu.Unlock()

	sum, err := load()

	sh.mu.Lock()
	e.sum, e.err = sum, err
	close(e.done)
	e.done = nil
	switch {
	case err != nil:
		// Never cache failures.
		if sh.entries[k] == e {
			delete(sh.entries, k)
		}
	case sh.entries[k] != e:
		// Invalidated while decoding (owner retired): serve, don't retain.
	case e.cost > sh.budget:
		// Larger than this shard's whole share: retaining it would evict
		// everything else for a single entry — serve it uncached instead,
		// keeping resident bytes strictly under the budget.
		delete(sh.entries, k)
	default:
		sh.pushFrontLocked(e)
		sh.bytes += e.cost
		for sh.bytes > sh.budget {
			c.evictOldestLocked(sh)
		}
	}
	sh.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	c.misses.Add(1)
	metricMisses.Inc()
	return sum, false, nil
}

// InvalidateOwner drops every resident and in-flight entry decoded from
// owner, uncharging their bytes — the hook the archive calls when a
// segment is retired by compaction. In-flight decodes for the owner
// complete (their waiters are served) but are not retained.
func (c *Cache) InvalidateOwner(owner any) {
	if c == nil {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.owner == owner {
				sh.removeLocked(e)
			}
		}
		sh.mu.Unlock()
	}
}

// InvalidateID drops the entry (any owner) for the given record id —
// the Remove hook. Record ids are unique across owners, so at most one
// entry matches.
func (c *Cache) InvalidateID(id int64) {
	if c == nil {
		return
	}
	sh := c.shardFor(id)
	sh.mu.Lock()
	for k, e := range sh.entries {
		if k.id == id {
			sh.removeLocked(e)
			break
		}
	}
	sh.mu.Unlock()
}

// Bytes returns the resident encoded-size charge.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += sh.bytes
		sh.mu.Unlock()
	}
	return total
}

// Stats returns a counter snapshot. Hits, Misses and Evicted are read
// without a lock barrier across shards, so the snapshot is
// monitoring-grade under concurrency, exact when quiescent.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Evicted: c.evicted.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Bytes += sh.bytes
		for _, e := range sh.entries {
			if e.done == nil {
				st.Entries++
			}
		}
		sh.mu.Unlock()
	}
	return st
}

func (c *Cache) evictOldestLocked(sh *shard) {
	if sh.tail == nil {
		return
	}
	sh.removeLocked(sh.tail)
	c.evicted.Add(1)
	metricEvictions.Inc()
}

// removeLocked unlinks e from the shard entirely. Placeholders (in-flight
// decodes) are in the map but not the list; removing one leaves the
// loader to notice on completion and skip retention.
func (sh *shard) removeLocked(e *entry) {
	delete(sh.entries, e.key)
	if e.done != nil {
		return
	}
	sh.unlinkLocked(e)
	sh.bytes -= e.cost
}

func (sh *shard) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) moveFrontLocked(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlinkLocked(e)
	sh.pushFrontLocked(e)
}
