package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// wellFormed asserts the exported span tree is structurally sound:
// span ids unique and dense from 1, root first with parent 0, every
// other parent resolving to an earlier-or-any span id in the trace.
func wellFormed(t *testing.T, td TraceData) {
	t.Helper()
	if len(td.Spans) == 0 {
		t.Fatalf("trace %s has no spans", td.TraceID)
	}
	ids := make(map[uint32]bool, len(td.Spans))
	for _, sd := range td.Spans {
		if ids[sd.ID] {
			t.Fatalf("trace %s: duplicate span id %d", td.TraceID, sd.ID)
		}
		ids[sd.ID] = true
	}
	root := td.Spans[0]
	if root.ID != 1 || root.Parent != 0 {
		t.Fatalf("trace %s: root span id=%d parent=%d, want 1/0", td.TraceID, root.ID, root.Parent)
	}
	for _, sd := range td.Spans[1:] {
		if sd.Parent == 0 || !ids[sd.Parent] {
			t.Errorf("trace %s: span %d (%s) parent %d does not resolve", td.TraceID, sd.ID, sd.Name, sd.Parent)
		}
	}
}

func TestTraceBasics(t *testing.T) {
	r := NewRecorder(4)
	tr := r.Start(Match, "query")
	if tr == nil {
		t.Fatal("enabled recorder returned nil trace")
	}
	tr.Root().SetInt("target", 7)
	f := tr.Start("filter")
	sh := f.Child("shard")
	sh.SetStr("segment", "mem")
	sh.SetBool("zone_skip", false)
	sh.End()
	f.SetInt("candidates", 3)
	f.End()
	o := tr.Start("order")
	o.End()
	id := tr.ID()
	td, ok := tr.Finish()
	if !ok {
		t.Fatal("Finish not ok")
	}
	wellFormed(t, td)
	if td.TraceID != id.String() || id.IsZero() {
		t.Fatalf("trace id %q vs %q", td.TraceID, id)
	}
	if td.Category != "match" || td.Name != "query" {
		t.Fatalf("category/name %q/%q", td.Category, td.Name)
	}
	if v, ok := td.Spans[0].Int("target"); !ok || v != 7 {
		t.Fatalf("root attr target = %v %v", v, ok)
	}
	fs := td.Span("filter")
	if fs == nil {
		t.Fatal("no filter span")
	}
	if v, ok := fs.Int("candidates"); !ok || v != 3 {
		t.Fatalf("filter candidates = %v %v", v, ok)
	}
	kids := td.Children(fs.ID)
	if len(kids) != 1 || kids[0].Name != "shard" {
		t.Fatalf("filter children = %+v", kids)
	}
	if s, ok := kids[0].Str("segment"); !ok || s != "mem" {
		t.Fatalf("shard segment attr = %q %v", s, ok)
	}
	if b, ok := kids[0].Bool("zone_skip"); !ok || b {
		t.Fatalf("shard zone_skip attr = %v %v", b, ok)
	}
	if td.DurNS < 0 || td.Spans[0].DurNS < td.Span("order").DurNS {
		t.Fatalf("durations inconsistent: %+v", td)
	}

	got := r.Traces(Match)
	if len(got) != 1 || got[0].TraceID != td.TraceID {
		t.Fatalf("recorder retained %+v", got)
	}
	if found, ok := r.Find(td.TraceID); !ok || found.Name != "query" {
		t.Fatalf("Find = %+v %v", found, ok)
	}
	if _, ok := r.Find("deadbeef"); ok {
		t.Fatal("Find matched a bogus id")
	}
}

// TestNilSafety: a disabled recorder hands out nil traces, and every
// operation on them (and on zero Spans) is a harmless no-op.
func TestNilSafety(t *testing.T) {
	r := NewRecorder(0)
	if r.Enabled() {
		t.Fatal("capacity-0 recorder reports enabled")
	}
	tr := r.Start(Ingest, "batch")
	if tr != nil {
		t.Fatal("disabled recorder returned a live trace")
	}
	tr.Root().SetInt("k", 1)
	sp := tr.Start("phase")
	sp.SetStr("s", "v")
	sp.SetBool("b", true)
	sp.Child("child").End()
	sp.End()
	if !tr.ID().IsZero() {
		t.Fatal("nil trace has a nonzero id")
	}
	if _, ok := tr.Finish(); ok {
		t.Fatal("nil trace Finish ok")
	}
	tr.Discard()
	var nilRec *Recorder
	if nilRec.Start(Match, "x") != nil || nilRec.All() != nil || nilRec.Enabled() {
		t.Fatal("nil recorder not inert")
	}
	nilRec.SetCapacity(3)
	if _, ok := nilRec.Find("x"); ok {
		t.Fatal("nil recorder Find ok")
	}
}

// TestRingEviction: the flight recorder retains exactly the last N
// completed traces per category, newest first, and categories do not
// evict each other.
func TestRingEviction(t *testing.T) {
	const cap = 4
	r := NewRecorder(cap)
	for i := 0; i < 11; i++ {
		tr := r.Start(Ingest, fmt.Sprintf("batch-%d", i))
		tr.Finish()
	}
	other := r.Start(Demote, "flush")
	other.Finish()

	got := r.Traces(Ingest)
	if len(got) != cap {
		t.Fatalf("retained %d ingest traces, want %d", len(got), cap)
	}
	for i, td := range got {
		want := fmt.Sprintf("batch-%d", 10-i)
		if td.Name != want {
			t.Errorf("trace[%d] = %s, want %s", i, td.Name, want)
		}
	}
	if d := r.Traces(Demote); len(d) != 1 || d[0].Name != "flush" {
		t.Fatalf("demote ring = %+v", d)
	}
	if all := r.All(); len(all) != cap+1 {
		t.Fatalf("All returned %d traces", len(all))
	}
	r.SetCapacity(2)
	if got := r.Traces(Ingest); got != nil {
		t.Fatalf("SetCapacity kept traces: %+v", got)
	}
}

// TestDroppedSpans: spans beyond MaxSpans are dropped and counted;
// the exported tree stays well-formed.
func TestDroppedSpans(t *testing.T) {
	r := NewRecorder(1)
	tr := r.Start(Match, "big")
	for i := 0; i < MaxSpans+10; i++ {
		sp := tr.Start("s")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	td, _ := tr.Finish()
	wellFormed(t, td)
	if len(td.Spans) != MaxSpans {
		t.Fatalf("exported %d spans, want %d", len(td.Spans), MaxSpans)
	}
	// Root occupies one slot, so 11 starts found the buffer full.
	if td.Dropped != 11 {
		t.Fatalf("dropped = %d, want 11", td.Dropped)
	}
}

// TestAttrOverflow: attributes beyond the per-span capacity are
// silently dropped, keeping recording allocation-free.
func TestAttrOverflow(t *testing.T) {
	tr := New(Match, "attrs", ID{})
	sp := tr.Start("s")
	for i := 0; i < maxAttrs+3; i++ {
		sp.SetInt(fmt.Sprintf("k%d", i), int64(i))
	}
	sp.End()
	td, _ := tr.Finish()
	if got := len(td.Span("s").Attrs); got != maxAttrs {
		t.Fatalf("kept %d attrs, want %d", got, maxAttrs)
	}
}

// TestStandalone: New works without a recorder — Finish exports but
// records nowhere.
func TestStandalone(t *testing.T) {
	id := ID{1, 2, 3}
	tr := New(SubEval, "window", id)
	tr.Start("probe").End()
	td, ok := tr.Finish()
	if !ok || td.TraceID != id.String() {
		t.Fatalf("standalone export = %+v %v", td, ok)
	}
	wellFormed(t, td)
}

// TestZeroAllocRecording is the hot-path contract: with tracing
// enabled, starting a span, attaching attributes of every kind, and
// ending it allocates nothing (the buffer was preallocated with the
// trace), including once the span buffer is exhausted; with tracing
// disabled (nil trace), the same call sequence also allocates nothing.
func TestZeroAllocRecording(t *testing.T) {
	r := NewRecorder(2)
	tr := r.Start(Ingest, "batch")
	record := func(tr *Trace) func() {
		return func() {
			sp := tr.Start("phase")
			sp.SetInt("tuples", 512)
			sp.SetStr("segment", "seg-000042")
			sp.SetBool("zone_skip", true)
			c := sp.Child("sub")
			c.End()
			sp.End()
		}
	}
	if n := testing.AllocsPerRun(1000, record(tr)); n != 0 {
		t.Errorf("enabled recording allocates %v per span", n)
	}
	tr.Finish()
	if n := testing.AllocsPerRun(1000, record(nil)); n != 0 {
		t.Errorf("disabled (nil-trace) recording allocates %v per span", n)
	}
	// The disabled recorder's Start itself is also allocation-free.
	off := NewRecorder(0)
	if n := testing.AllocsPerRun(1000, func() {
		tr := off.Start(Match, "q")
		tr.Start("filter").End()
		tr.Finish()
	}); n != 0 {
		t.Errorf("disabled recorder Start allocates %v per op", n)
	}
}

// TestConcurrentSpans: many goroutines record spans into one trace
// (the match fan-out shape) while readers poll the recorder; the
// committed tree is well-formed and the reader copies are stable.
func TestConcurrentSpans(t *testing.T) {
	r := NewRecorder(8)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, td := range r.All() {
					wellFormed(t, td)
				}
			}
		}()
	}
	for round := 0; round < 50; round++ {
		tr := r.Start(Match, "fanout")
		parent := tr.Start("filter")
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < 4; k++ {
					sp := parent.Child("shard")
					sp.SetInt("worker", int64(g))
					sp.End()
				}
			}(g)
		}
		wg.Wait()
		parent.End()
		td, _ := tr.Finish()
		wellFormed(t, td)
		if want := 2 + 8*4; len(td.Spans) != want {
			t.Fatalf("round %d: %d spans, want %d", round, len(td.Spans), want)
		}
	}
	close(stop)
	readers.Wait()
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := randomID()
	h := Traceparent(id, 0x1234)
	got, parent, ok := ParseTraceparent(h)
	if !ok || got != id || parent != 0x1234 {
		t.Fatalf("round trip %q -> %v %x %v", h, got, parent, ok)
	}
	if h2 := Traceparent(id, 0); h2[36:52] != "0000000000000001" {
		t.Fatalf("zero span id not defaulted: %q", h2)
	}

	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if id, parent, ok := ParseTraceparent(valid); !ok || id.String() != "0af7651916cd43dd8448eb211c80319c" || parent == 0 {
		t.Fatalf("spec example rejected: %v %x %v", id, parent, ok)
	}
	// A future version with trailing fields parses (forward compat).
	if _, _, ok := ParseTraceparent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); !ok {
		t.Error("future-version header rejected")
	}
	for _, bad := range []string{
		"",
		"00",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",      // missing flags
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // version ff
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",   // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",   // zero parent
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x", // v00 with extra
		"zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // bad version hex
		"00-0af7651916cd43dd8448eb211c8031XX-b7ad6b7169203331-01",   // bad id hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033XX-01",   // bad parent hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-XX",   // bad flags hex
		"00x0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // bad separator
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("accepted invalid traceparent %q", bad)
		}
	}
}

// TestDisabledBetweenStartAndFinish: turning the recorder off while a
// trace is in flight must not record or crash.
func TestDisabledBetweenStartAndFinish(t *testing.T) {
	r := NewRecorder(2)
	tr := r.Start(Compact, "run")
	r.SetCapacity(0)
	tr.Start("merge").End()
	if _, ok := tr.Finish(); !ok {
		t.Fatal("in-flight trace lost its data")
	}
	if got := r.All(); got != nil {
		t.Fatalf("disabled recorder retained %+v", got)
	}
}

// TestCategoryNames pins the category labels the HTTP surface exposes.
func TestCategoryNames(t *testing.T) {
	want := map[Category]string{
		Ingest: "ingest", Match: "match", SubEval: "subeval",
		Demote: "demote", Compact: "compact",
	}
	cats := Categories()
	if len(cats) != len(want) {
		t.Fatalf("Categories() = %v", cats)
	}
	for _, c := range cats {
		if c.String() != want[c] {
			t.Errorf("category %d = %q, want %q", c, c, want[c])
		}
	}
	if Category(200).String() != "unknown" {
		t.Error("out-of-range category not labeled unknown")
	}
}

// Recording wall-clock sanity: span durations are measured with the
// monotonic clock, so a span spanning a sleep reads at least that long.
func TestSpanDuration(t *testing.T) {
	tr := New(Demote, "flush", ID{})
	sp := tr.Start("fsync")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	td, _ := tr.Finish()
	if d := td.Span("fsync").DurNS; d < int64(1*time.Millisecond) {
		t.Fatalf("span duration %dns, want >= ~2ms", d)
	}
}
