package trace

import (
	"encoding/hex"
	"fmt"
)

// ParseTraceparent parses a W3C trace-context traceparent header
// ("<2 hex version>-<32 hex trace-id>-<16 hex parent-id>-<2 hex
// flags>"). It returns the trace id, the parent span id, and whether
// the header was valid; per the spec, an unknown version is accepted
// as long as the prefix parses, while version ff, a zero trace id, and
// a zero parent id are invalid. Callers ignore invalid headers and
// mint a fresh id instead of failing the request.
func ParseTraceparent(h string) (id ID, parent uint64, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return ID{}, 0, false
	}
	if len(h) > 55 && h[55] != '-' {
		return ID{}, 0, false
	}
	var version [1]byte
	if _, err := hex.Decode(version[:], []byte(h[0:2])); err != nil || version[0] == 0xff {
		return ID{}, 0, false
	}
	if version[0] == 0 && len(h) != 55 {
		return ID{}, 0, false
	}
	if _, err := hex.Decode(id[:], []byte(h[3:35])); err != nil || id.IsZero() {
		return ID{}, 0, false
	}
	var pb [8]byte
	if _, err := hex.Decode(pb[:], []byte(h[36:52])); err != nil {
		return ID{}, 0, false
	}
	for _, b := range pb {
		parent = parent<<8 | uint64(b)
	}
	if parent == 0 {
		return ID{}, 0, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return ID{}, 0, false
	}
	return id, parent, true
}

// Traceparent renders a version-00 traceparent header for the given
// trace id and span id, sampled flag set — what sgsd emits back on
// /match and /subscribe responses.
func Traceparent(id ID, span uint64) string {
	if span == 0 {
		span = 1
	}
	return fmt.Sprintf("00-%s-%016x-01", id, span)
}
