package trace

import (
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Category partitions the flight recorder: each category keeps its own
// ring of recently completed traces, so a flood of ingest batches never
// evicts the one slow match an operator is hunting.
type Category uint8

const (
	// Ingest traces one PushBatch through the batch pipeline
	// (per-segment discovery/apply, per-window emit).
	Ingest Category = iota
	// Match traces one one-shot matching query (filter with per-shard
	// children, refine, order).
	Match
	// SubEval traces one completed window from archiving through
	// standing-query evaluation and event delivery.
	SubEval
	// Demote traces one demotion batch flushed to the segment store.
	Demote
	// Compact traces one compaction run (merge + manifest commit).
	Compact

	numCategories
)

var categoryNames = [numCategories]string{
	Ingest:  "ingest",
	Match:   "match",
	SubEval: "subeval",
	Demote:  "demote",
	Compact: "compact",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "unknown"
}

// Categories returns every recorder category, for handlers and tests
// that iterate the flight recorder.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// ID is a 16-byte trace id, rendered as 32 lowercase hex characters —
// the W3C trace-context trace-id format.
type ID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id ID) IsZero() bool { return id == ID{} }

func (id ID) String() string { return hex.EncodeToString(id[:]) }

func randomID() ID {
	var id ID
	for id.IsZero() {
		binary.LittleEndian.PutUint64(id[0:8], rand.Uint64())
		binary.LittleEndian.PutUint64(id[8:16], rand.Uint64())
	}
	return id
}

// MaxSpans is the per-trace span capacity. Spans started beyond it are
// dropped (recording stays a no-op rather than allocating) and counted
// in TraceData.Dropped.
const MaxSpans = 192

// maxAttrs is the per-span attribute capacity; attributes set beyond
// it are silently dropped.
const maxAttrs = 6

type attrKind uint8

const (
	attrNone attrKind = iota
	attrInt
	attrStr
	attrBool
)

type attr struct {
	key  string
	str  string
	num  int64
	kind attrKind
}

type span struct {
	id     uint32
	parent uint32
	name   string
	start  time.Time
	end    time.Time
	nattr  int
	attrs  [maxAttrs]attr
}

// Trace is one in-flight recording: a preallocated span buffer plus
// identity. Obtain one from Recorder.Start (nil when disabled) or New;
// see the package comment for the lifetime and concurrency contract.
type Trace struct {
	rec     *Recorder
	cat     Category
	name    string
	id      ID
	start   time.Time
	next    atomic.Int32
	dropped atomic.Int32
	spans   [MaxSpans]span
}

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

func newTrace(rec *Recorder, cat Category, name string, id ID) *Trace {
	t := tracePool.Get().(*Trace)
	t.rec = rec
	t.cat = cat
	t.name = name
	if id.IsZero() {
		id = randomID()
	}
	t.id = id
	t.start = time.Now()
	t.dropped.Store(0)
	t.next.Store(1)
	t.spans[0] = span{id: 1, name: name, start: t.start}
	return t
}

// New returns a standalone trace that is not attached to any recorder:
// Finish returns its TraceData but records nothing. Use it where a
// span tree is wanted per call even while the flight recorder is
// disabled (sgsd always derives the /match phase breakdown from one).
// A zero id draws a random one.
func New(cat Category, name string, id ID) *Trace {
	return newTrace(nil, cat, name, id)
}

// ID returns the trace id (zero for a nil trace).
func (t *Trace) ID() ID {
	if t == nil {
		return ID{}
	}
	return t.id
}

// Span is a handle to one span of a trace. The zero Span (from a nil
// or full trace) is a valid no-op target for all methods.
type Span struct {
	t *Trace
	s *span
}

// startSpan claims the next span slot; the trace's slot 0 is the root.
func (t *Trace) startSpan(name string, parent uint32) Span {
	if t == nil {
		return Span{}
	}
	i := t.next.Add(1) - 1
	if int(i) >= MaxSpans {
		t.dropped.Add(1)
		return Span{}
	}
	s := &t.spans[i]
	s.id = uint32(i) + 1
	s.parent = parent
	s.name = name
	s.start = time.Now()
	s.end = time.Time{}
	s.nattr = 0
	return Span{t: t, s: s}
}

// Root returns the root span, started with the trace and ended by
// Finish. Attributes set on it describe the operation as a whole.
func (t *Trace) Root() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, s: &t.spans[0]}
}

// Start starts a child span of the root.
func (t *Trace) Start(name string) Span { return t.startSpan(name, 1) }

// Child starts a child span of s.
func (s Span) Child(name string) Span {
	if s.s == nil {
		return Span{}
	}
	return s.t.startSpan(name, s.s.id)
}

// SetInt attaches an integer attribute to the span.
func (s Span) SetInt(key string, v int64) {
	if s.s == nil || s.s.nattr >= maxAttrs {
		return
	}
	s.s.attrs[s.s.nattr] = attr{key: key, num: v, kind: attrInt}
	s.s.nattr++
}

// SetStr attaches a string attribute to the span.
func (s Span) SetStr(key, v string) {
	if s.s == nil || s.s.nattr >= maxAttrs {
		return
	}
	s.s.attrs[s.s.nattr] = attr{key: key, str: v, kind: attrStr}
	s.s.nattr++
}

// SetBool attaches a boolean attribute to the span.
func (s Span) SetBool(key string, v bool) {
	if s.s == nil || s.s.nattr >= maxAttrs {
		return
	}
	var n int64
	if v {
		n = 1
	}
	s.s.attrs[s.s.nattr] = attr{key: key, num: n, kind: attrBool}
	s.s.nattr++
}

// End records the span's end time. A span never ended inherits the
// trace's end time on export.
func (s Span) End() {
	if s.s != nil {
		s.s.end = time.Now()
	}
}

// Finish ends the root span, commits the trace to its recorder's ring
// (if any), recycles the span buffer, and returns the immutable
// export. ok is false only for a nil trace. The trace must not be
// used after Finish.
func (t *Trace) Finish() (td TraceData, ok bool) {
	if t == nil {
		return TraceData{}, false
	}
	end := time.Now()
	t.spans[0].end = end
	td = t.export(end)
	if t.rec != nil {
		t.rec.commit(t.cat, td)
	}
	t.release()
	return td, true
}

// Discard abandons the trace without recording it (e.g. a compaction
// pass that found no work). The trace must not be used afterwards.
func (t *Trace) Discard() {
	if t != nil {
		t.release()
	}
}

func (t *Trace) release() {
	t.rec = nil
	tracePool.Put(t)
}

func (t *Trace) export(end time.Time) TraceData {
	n := int(t.next.Load())
	if n > MaxSpans {
		n = MaxSpans
	}
	td := TraceData{
		TraceID:  t.id.String(),
		Category: t.cat.String(),
		Name:     t.name,
		StartNS:  t.start.UnixNano(),
		DurNS:    end.Sub(t.start).Nanoseconds(),
		Dropped:  int(t.dropped.Load()),
		Spans:    make([]SpanData, n),
	}
	for i := 0; i < n; i++ {
		s := &t.spans[i]
		sd := SpanData{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartNS: s.start.UnixNano(),
		}
		se := s.end
		if se.IsZero() {
			se = end
		}
		sd.DurNS = se.Sub(s.start).Nanoseconds()
		if s.nattr > 0 {
			sd.Attrs = make(map[string]any, s.nattr)
			for _, a := range s.attrs[:s.nattr] {
				switch a.kind {
				case attrInt:
					sd.Attrs[a.key] = a.num
				case attrStr:
					sd.Attrs[a.key] = a.str
				case attrBool:
					sd.Attrs[a.key] = a.num != 0
				}
			}
		}
		td.Spans[i] = sd
	}
	return td
}

// SpanData is the immutable export of one span. The root span has
// ID 1 and Parent 0; every other Parent references a span id within
// the same trace.
type SpanData struct {
	ID      uint32         `json:"id"`
	Parent  uint32         `json:"parent"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_unix_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Int returns an integer attribute (0, false when absent or not an
// integer).
func (sd SpanData) Int(key string) (int64, bool) {
	v, ok := sd.Attrs[key].(int64)
	return v, ok
}

// Str returns a string attribute.
func (sd SpanData) Str(key string) (string, bool) {
	v, ok := sd.Attrs[key].(string)
	return v, ok
}

// Bool returns a boolean attribute.
func (sd SpanData) Bool(key string) (bool, bool) {
	v, ok := sd.Attrs[key].(bool)
	return v, ok
}

// TraceData is the immutable export of one completed trace — what the
// flight recorder retains and what readers receive. Spans appear in
// start order (slot order); Spans[0] is the root.
type TraceData struct {
	TraceID  string     `json:"trace"`
	Category string     `json:"category"`
	Name     string     `json:"name"`
	StartNS  int64      `json:"start_unix_ns"`
	DurNS    int64      `json:"dur_ns"`
	Dropped  int        `json:"dropped_spans,omitempty"`
	Spans    []SpanData `json:"spans"`
}

// Span returns the first span with the given name, or nil.
func (td TraceData) Span(name string) *SpanData {
	for i := range td.Spans {
		if td.Spans[i].Name == name {
			return &td.Spans[i]
		}
	}
	return nil
}

// Children returns the spans whose parent is the given span id, in
// start order.
func (td TraceData) Children(parent uint32) []SpanData {
	var out []SpanData
	for _, sd := range td.Spans {
		if sd.Parent == parent && sd.ID != sd.Parent {
			out = append(out, sd)
		}
	}
	return out
}

// Recorder is the flight recorder: a bounded ring of completed traces
// per category. The zero capacity recorder is disabled — Start returns
// nil and nothing is retained. All methods are safe for concurrent
// use, and all methods on a nil *Recorder are no-ops.
type Recorder struct {
	capacity atomic.Int32
	mu       sync.Mutex
	rings    [numCategories][]TraceData // circular, len == capacity once touched
	pos      [numCategories]int         // next write slot
	count    [numCategories]int         // traces held, <= capacity
}

// Default is the process-wide flight recorder, disabled until
// SetCapacity is called (sgsd's -trace flag). Library code records
// into it unconditionally; the nil-trace no-op keeps the disabled cost
// to one atomic load per operation.
var Default = NewRecorder(0)

// NewRecorder returns a recorder retaining up to perCategory completed
// traces in each category; 0 disables recording.
func NewRecorder(perCategory int) *Recorder {
	r := &Recorder{}
	r.SetCapacity(perCategory)
	return r
}

// SetCapacity resizes the per-category rings, dropping any retained
// traces; 0 disables the recorder.
func (r *Recorder) SetCapacity(n int) {
	if r == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.capacity.Store(int32(n))
	for c := range r.rings {
		r.rings[c] = nil
		r.pos[c] = 0
		r.count[c] = 0
	}
}

// Capacity returns the per-category ring capacity.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return int(r.capacity.Load())
}

// Enabled reports whether Start returns live traces.
func (r *Recorder) Enabled() bool { return r.Capacity() > 0 }

// Start begins a trace with a random id. It returns nil when the
// recorder is disabled or nil — safe to use anyway.
func (r *Recorder) Start(cat Category, name string) *Trace {
	return r.StartID(cat, name, ID{})
}

// StartID is Start with an externally supplied trace id (a parsed
// traceparent header); a zero id draws a random one.
func (r *Recorder) StartID(cat Category, name string, id ID) *Trace {
	if r == nil || r.capacity.Load() == 0 {
		return nil
	}
	return newTrace(r, cat, name, id)
}

func (r *Recorder) commit(cat Category, td TraceData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(r.capacity.Load())
	if n == 0 {
		return // disabled between Start and Finish
	}
	if len(r.rings[cat]) != n {
		ring := make([]TraceData, n)
		// SetCapacity cleared state, so rebuild from empty.
		r.rings[cat] = ring
		r.pos[cat] = 0
		r.count[cat] = 0
	}
	r.rings[cat][r.pos[cat]] = td
	r.pos[cat] = (r.pos[cat] + 1) % n
	if r.count[cat] < n {
		r.count[cat]++
	}
}

// Traces returns the retained traces of one category, newest first.
// The returned data is immutable and safe to hold.
func (r *Recorder) Traces(cat Category) []TraceData {
	if r == nil || int(cat) >= int(numCategories) {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracesLocked(cat)
}

func (r *Recorder) tracesLocked(cat Category) []TraceData {
	n := r.count[cat]
	if n == 0 {
		return nil
	}
	ring := r.rings[cat]
	out := make([]TraceData, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, ring[(r.pos[cat]-i+len(ring))%len(ring)])
	}
	return out
}

// All returns every retained trace across categories, newest first
// within each category, categories in declaration order.
func (r *Recorder) All() []TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []TraceData
	for c := Category(0); c < numCategories; c++ {
		out = append(out, r.tracesLocked(c)...)
	}
	return out
}

// Find returns the retained trace with the given hex id.
func (r *Recorder) Find(id string) (TraceData, bool) {
	if r == nil {
		return TraceData{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for c := Category(0); c < numCategories; c++ {
		for _, td := range r.tracesLocked(c) {
			if td.TraceID == id {
				return td, true
			}
		}
	}
	return TraceData{}, false
}
