// Package trace is a dependency-free span-tracing subsystem with a
// bounded flight recorder: every traced operation (one ingest batch,
// one match query, one window evaluation, one demotion flush, one
// compaction run) records a tree of spans — trace id, span id, parent
// id, wall times, and a fixed set of typed attributes — and the
// recorder retains the last N completed traces per category in a ring
// buffer for retrieval after the fact ("what was the daemon doing just
// before the anomaly?").
//
// # Recording lifetime
//
// A Trace is obtained from a Recorder (Recorder.Start / StartID) or
// standalone via New. Recorder.Start returns nil when the recorder is
// disabled (capacity 0); every method on a nil *Trace and on the zero
// Span is a safe no-op, so instrumented code never branches on whether
// tracing is on. Spans are carved out of a buffer preallocated with
// the trace: starting a span, setting attributes, and ending it
// allocate nothing (asserted by testing.AllocsPerRun in the tests).
// A trace holds at most MaxSpans spans and a span at most a fixed
// number of attributes; excess spans are dropped and counted
// (TraceData.Dropped), excess attributes are dropped silently.
//
// Finish ends the root span, converts the trace into an immutable
// TraceData, commits it to the recorder's per-category ring (evicting
// the oldest trace once the ring is full), and recycles the trace's
// buffer. After Finish (or Discard) returns, the *Trace and any Span
// handles derived from it must not be used again — use the returned
// TraceData instead. Traces that are never finished are never
// recorded.
//
// # Concurrency
//
// Span slots are claimed with an atomic counter, so any number of
// goroutines may concurrently start spans on one trace (the match
// phases fan out per shard, ingest discovery fans out per worker).
// Each individual span must be written by a single goroutine: the one
// that started it calls SetInt/SetStr/SetBool/End. The caller must
// make all span writes happen-before Finish — in practice, join every
// goroutine recording into the trace before finishing it, which the
// instrumented pipelines already do for their own results. Recorder
// methods (Start, Traces, Find, SetCapacity) are safe for concurrent
// use; readers receive immutable snapshots and never block recording
// for longer than a ring copy.
//
// # Trace context propagation
//
// ParseTraceparent and Traceparent convert between a trace id and the
// W3C trace-context header ("00-<trace-id>-<span-id>-<flags>"), the
// seam through which external ids flow into recorded traces (sgsd
// accepts and emits the header on /match and /subscribe).
package trace
