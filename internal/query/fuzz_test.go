package query

import (
	"strings"
	"testing"
)

// FuzzParse drives the full grammar — both Figure 2 (DETECT) and Figure 3
// (GIVEN, FROM History and FROM Stream) — through the parser. The parser
// must never panic or hang, and anything it accepts must satisfy the
// documented invariants (valid thresholds and window parameters, Standing
// implies no LIMIT). The seed corpus covers every production; the fuzzer
// mutates from there.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Figure 2, including representation markers and window units.
		"DETECT DensityBasedClusters FROM stream USING theta_range = 0.1 AND theta_cnt = 8 IN WINDOWS WITH win = 10000 AND slide = 1000",
		"DETECT DensityBasedClusters FULL FROM s USING theta_range = 1 AND theta_cnt = 1 IN WINDOWS WITH win = 2 AND slide = 1",
		"DETECT DensityBasedClusters F + S FROM s USING theta_range = 1e-1 AND theta_cnt = 4 IN WINDOWS WITH win = 500 TUPLES AND slide = 100 TUPLES",
		"DETECT DensityBasedClusters FS FROM s USING theta_range = 0.5 AND theta_cnt = 3 IN WINDOWS WITH win = 60 TICKS AND slide = 10 SECONDS",
		// Figure 3, one-shot.
		"GIVEN DensityBasedCluster input SELECT DensityBasedClusters FROM History WHERE Distance <= 0.2",
		"GIVEN DensityBasedClusters 17 SELECT DensityBasedClusters FROM History WHERE Distance <= 0.3 WITH WEIGHTS volume = 0.4, status = 0.2, density = 0.2, connectivity = 0.2 POSITION SENSITIVE LIMIT 3",
		// Figure 3, standing (FROM Stream).
		"GIVEN DensityBasedCluster 4 SELECT DensityBasedClusters FROM Stream WHERE Distance <= 0.25",
		"GIVEN DensityBasedCluster tmpl SELECT DensityBasedClusters FROM Stream WHERE Distance <= 0.1 WITH WEIGHTS volume = 0.25, status = 0.25, density = 0.25, connectivity = 0.25 POSITION SENSITIVE",
		// Near-miss inputs that must be rejected gracefully.
		"GIVEN DensityBasedCluster 1 SELECT DensityBasedClusters FROM Stream WHERE Distance <= 0.2 LIMIT 3",
		"GIVEN DensityBasedCluster 1 SELECT DensityBasedClusters FROM Archive WHERE Distance <= 0.2",
		"DETECT ; nonsense",
		"",
		"1.5e- <= = , + -",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// The lexer is byte-indexed; cap input so mutated inputs cannot
		// turn the fuzzer into a memory benchmark.
		if len(s) > 1<<12 {
			return
		}
		v, err := Parse(s)
		if err != nil {
			if v != nil {
				t.Fatalf("Parse(%q) returned both a query and an error", s)
			}
			return
		}
		switch q := v.(type) {
		case *ClusterQuery:
			if q.ThetaR <= 0 || q.ThetaC < 1 || q.Win <= 0 || q.Slide <= 0 || q.Slide > q.Win {
				t.Fatalf("accepted invalid cluster query %+v from %q", q, s)
			}
			if q.Stream == "" {
				t.Fatalf("accepted cluster query without a stream name from %q", s)
			}
		case *MatchQuery:
			if q.Threshold < 0 || q.Threshold > 1 {
				t.Fatalf("accepted out-of-range threshold %g from %q", q.Threshold, s)
			}
			if q.Standing && q.Limit > 0 {
				t.Fatalf("accepted standing query with LIMIT from %q", s)
			}
			if q.Limit < 0 {
				t.Fatalf("accepted negative LIMIT from %q", s)
			}
			if q.Target == "" {
				t.Fatalf("accepted match query without a target from %q", s)
			}
			if strings.TrimSpace(q.Target) != q.Target {
				t.Fatalf("target %q carries whitespace from %q", q.Target, s)
			}
		default:
			t.Fatalf("Parse returned unexpected type %T", v)
		}
	})
}
