// Package query parses the two analytical query templates of §3.2:
//
// Continuous clustering queries (Figure 2):
//
//	DETECT DensityBasedClusters FROM stream
//	USING theta_range = 0.1 AND theta_cnt = 8
//	IN WINDOWS WITH win = 10000 AND slide = 1000
//
// An optional representation marker after DensityBasedClusters selects the
// output format: FULL (full representation only, Extra-N style) or F+S
// (full + summarized, the default, C-SGS). Window sizes take an optional
// unit: TUPLES (count-based, default) or TICKS (time-based).
//
// Cluster matching queries (Figure 3):
//
//	GIVEN DensityBasedCluster input
//	SELECT DensityBasedClusters FROM History
//	WHERE Distance <= 0.2
//	  [WITH WEIGHTS volume = 0.25, status = 0.25, density = 0.25, connectivity = 0.25]
//	  [POSITION SENSITIVE]
//	  [LIMIT 3]
//
// FROM History is the paper's one-shot form: the query scans the pattern
// base once. FROM Stream instead registers a *standing* query evaluated
// against every future window's newly archived clusters (a subscription;
// see internal/sub) — the parsed MatchQuery carries Standing = true and
// LIMIT is rejected (a standing query has no result set to truncate).
//
// Keywords are case-insensitive; identifiers and numbers follow Go lexical
// rules for the relevant literals.
package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ClusterQuery is a parsed continuous clustering query.
type ClusterQuery struct {
	Stream     string  // source name after FROM
	ThetaR     float64 // θ_range
	ThetaC     int     // θ_cnt
	Win, Slide int64
	TimeBased  bool
	// Summarized selects full+summarized output (true, default) or
	// full-only (false).
	Summarized bool
}

// MatchQuery is a parsed cluster matching query.
type MatchQuery struct {
	// Target names the to-be-matched cluster: an identifier the caller
	// resolves (e.g. "input") or an integer archive id (e.g. "17").
	Target            string
	Threshold         float64
	Weights           [4]float64 // volume, status, density, connectivity
	HasWeights        bool
	PositionSensitive bool
	Limit             int
	// Standing is true for FROM Stream queries: the query subscribes to
	// matches among future windows' clusters instead of scanning history.
	Standing bool
}

// Parse parses either query form, returning *ClusterQuery or *MatchQuery.
// On error the returned value is untyped nil (never a typed nil pointer
// boxed in the interface).
func Parse(s string) (interface{}, error) {
	p := &parser{toks: lex(s)}
	switch {
	case p.peekKeyword("DETECT"):
		q, err := p.parseCluster()
		if err != nil {
			return nil, err
		}
		return q, nil
	case p.peekKeyword("GIVEN"):
		q, err := p.parseMatch()
		if err != nil {
			return nil, err
		}
		return q, nil
	default:
		return nil, fmt.Errorf("query: expected DETECT or GIVEN, got %q", p.peekText())
	}
}

// ParseCluster parses a continuous clustering query.
func ParseCluster(s string) (*ClusterQuery, error) {
	v, err := Parse(s)
	if err != nil {
		return nil, err
	}
	q, ok := v.(*ClusterQuery)
	if !ok {
		return nil, fmt.Errorf("query: not a DETECT query")
	}
	return q, nil
}

// ParseMatch parses a cluster matching query.
func ParseMatch(s string) (*MatchQuery, error) {
	v, err := Parse(s)
	if err != nil {
		return nil, err
	}
	q, ok := v.(*MatchQuery)
	if !ok {
		return nil, fmt.Errorf("query: not a GIVEN query")
	}
	return q, nil
}

// --- lexer -------------------------------------------------------------------

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokSymbol // = , <= +
	tokEOF
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '=' || c == ',' || c == '+':
			toks = append(toks, token{tokSymbol, string(c)})
			i++
		case c == '<':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokSymbol, "<="})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, "<"})
				i++
			}
		case unicode.IsDigit(c) || c == '.' || c == '-':
			j := i + 1
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.' || s[j] == 'e' || s[j] == 'E' || s[j] == '-' || s[j] == '+') {
				// Stop '+'/'-' unless part of an exponent.
				if (s[j] == '-' || s[j] == '+') && !(s[j-1] == 'e' || s[j-1] == 'E') {
					break
				}
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		default:
			toks = append(toks, token{tokSymbol, string(c)})
			i++
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

// --- parser ------------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token      { return p.toks[p.pos] }
func (p *parser) peekText() string { return p.toks[p.pos].text }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peekKeyword(kw) {
		return fmt.Errorf("query: expected %s, got %q", kw, p.peekText())
	}
	p.next()
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("query: expected %q, got %q", sym, t.text)
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("query: expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) expectNumber() (float64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("query: expected number, got %q", t.text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad number %q: %v", t.text, err)
	}
	p.next()
	return v, nil
}

func (p *parser) expectInt() (int64, error) {
	v, err := p.expectNumber()
	if err != nil {
		return 0, err
	}
	if v != float64(int64(v)) {
		return 0, fmt.Errorf("query: expected integer, got %g", v)
	}
	return int64(v), nil
}

// expectAssign parses `name = value`.
func (p *parser) expectAssign(name string) (float64, error) {
	if err := p.expectKeyword(name); err != nil {
		return 0, err
	}
	if err := p.expectSymbol("="); err != nil {
		return 0, err
	}
	return p.expectNumber()
}

func (p *parser) expectEOF() error {
	if p.peek().kind != tokEOF {
		return fmt.Errorf("query: unexpected trailing input %q", p.peekText())
	}
	return nil
}

func (p *parser) parseCluster() (*ClusterQuery, error) {
	q := &ClusterQuery{Summarized: true}
	if err := p.expectKeyword("DETECT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("DensityBasedClusters"); err != nil {
		return nil, err
	}
	// Optional representation marker: FULL | F + S | FS.
	switch {
	case p.acceptKeyword("FULL"):
		q.Summarized = false
	case p.acceptKeyword("F"):
		if err := p.expectSymbol("+"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("S"); err != nil {
			return nil, err
		}
	case p.acceptKeyword("FS"):
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var err error
	if q.Stream, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	if q.ThetaR, err = p.expectAssign("theta_range"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	tc, err := p.expectAssign("theta_cnt")
	if err != nil {
		return nil, err
	}
	if tc != float64(int(tc)) {
		return nil, fmt.Errorf("query: theta_cnt must be an integer, got %g", tc)
	}
	q.ThetaC = int(tc)
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("WINDOWS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("WITH"); err != nil {
		return nil, err
	}
	if q.Win, err = p.windowExtent("win", q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	if q.Slide, err = p.windowExtent("slide", q); err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	if q.ThetaR <= 0 || q.ThetaC < 1 || q.Win <= 0 || q.Slide <= 0 || q.Slide > q.Win {
		return nil, fmt.Errorf("query: invalid parameters (θr=%g θc=%d win=%d slide=%d)", q.ThetaR, q.ThetaC, q.Win, q.Slide)
	}
	return q, nil
}

// windowExtent parses `name = N [TUPLES|TICKS]`.
func (p *parser) windowExtent(name string, q *ClusterQuery) (int64, error) {
	if err := p.expectKeyword(name); err != nil {
		return 0, err
	}
	if err := p.expectSymbol("="); err != nil {
		return 0, err
	}
	v, err := p.expectInt()
	if err != nil {
		return 0, err
	}
	switch {
	case p.acceptKeyword("TUPLES"):
	case p.acceptKeyword("TICKS"), p.acceptKeyword("SECONDS"):
		q.TimeBased = true
	}
	return v, nil
}

func (p *parser) parseMatch() (*MatchQuery, error) {
	q := &MatchQuery{}
	if err := p.expectKeyword("GIVEN"); err != nil {
		return nil, err
	}
	// Accept both singular and plural noun.
	if !p.acceptKeyword("DensityBasedCluster") {
		if err := p.expectKeyword("DensityBasedClusters"); err != nil {
			return nil, err
		}
	}
	// The target is an identifier the caller resolves, or an integer
	// archive id (how sgsd's /match endpoint names archived clusters).
	// The id is stored in canonical form so "17.0" and "17" resolve the
	// same downstream.
	var err error
	if p.peek().kind == tokNumber {
		v, err := p.expectInt()
		if err != nil {
			return nil, fmt.Errorf("query: cluster reference must be an identifier or integer id: %v", err)
		}
		q.Target = strconv.FormatInt(v, 10)
	} else if q.Target, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("DensityBasedClusters"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("History"):
	case p.acceptKeyword("Stream"):
		q.Standing = true
	default:
		return nil, fmt.Errorf("query: expected History or Stream after FROM, got %q", p.peekText())
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("Distance"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("<="); err != nil {
		return nil, err
	}
	if q.Threshold, err = p.expectNumber(); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKeyword("WITH"):
			if err := p.expectKeyword("WEIGHTS"); err != nil {
				return nil, err
			}
			names := []string{"volume", "status", "density", "connectivity"}
			for i, n := range names {
				if q.Weights[i], err = p.expectAssign(n); err != nil {
					return nil, err
				}
				if i < len(names)-1 {
					if err := p.expectSymbol(","); err != nil {
						return nil, err
					}
				}
			}
			q.HasWeights = true
		case p.acceptKeyword("POSITION"):
			if err := p.expectKeyword("SENSITIVE"); err != nil {
				return nil, err
			}
			q.PositionSensitive = true
		case p.acceptKeyword("LIMIT"):
			n, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("query: LIMIT must be positive")
			}
			q.Limit = int(n)
		default:
			if err := p.expectEOF(); err != nil {
				return nil, err
			}
			if q.Threshold < 0 || q.Threshold > 1 {
				return nil, fmt.Errorf("query: threshold %g out of [0,1]", q.Threshold)
			}
			if q.Standing && q.Limit > 0 {
				return nil, fmt.Errorf("query: LIMIT applies to FROM History queries only")
			}
			return q, nil
		}
	}
}
