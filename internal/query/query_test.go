package query

import (
	"strings"
	"testing"
)

func TestParseClusterFigure2(t *testing.T) {
	q, err := ParseCluster(`
		DETECT DensityBasedClusters f+s FROM stock_trades
		USING theta_range = 0.1 AND theta_cnt = 8
		IN WINDOWS WITH win = 10000 AND slide = 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Stream != "stock_trades" || q.ThetaR != 0.1 || q.ThetaC != 8 ||
		q.Win != 10000 || q.Slide != 1000 || !q.Summarized || q.TimeBased {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseClusterVariants(t *testing.T) {
	// FULL representation, time-based windows, case-insensitive keywords.
	q, err := ParseCluster(`detect densitybasedclusters FULL from gmti
		using THETA_RANGE = 0.5 and THETA_CNT = 5
		in windows with WIN = 600 ticks and SLIDE = 60 ticks`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Summarized || !q.TimeBased || q.Win != 600 || q.Slide != 60 {
		t.Fatalf("parsed %+v", q)
	}
	// Explicit TUPLES unit stays count-based.
	q2, err := ParseCluster(`DETECT DensityBasedClusters FROM s
		USING theta_range = 1 AND theta_cnt = 2
		IN WINDOWS WITH win = 10 TUPLES AND slide = 5 TUPLES`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.TimeBased {
		t.Fatal("TUPLES should be count-based")
	}
}

func TestParseClusterErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT foo",
		"DETECT DensityBasedClusters FROM s USING theta_range = 0.1 AND theta_cnt = 8",
		"DETECT DensityBasedClusters FROM s USING theta_range = 0.1 AND theta_cnt = 8 IN WINDOWS WITH win = 10 AND slide = 20", // slide > win
		"DETECT DensityBasedClusters FROM s USING theta_range = -1 AND theta_cnt = 8 IN WINDOWS WITH win = 10 AND slide = 5",
		"DETECT DensityBasedClusters FROM s USING theta_range = 0.1 AND theta_cnt = 8 IN WINDOWS WITH win = 10 AND slide = 5 EXTRA",
		"DETECT DensityBasedClusters FROM s USING theta_range = 0.1 AND theta_cnt = 2.5 IN WINDOWS WITH win = 10 AND slide = 5",
	}
	for _, s := range bad {
		if _, err := ParseCluster(s); err == nil {
			t.Errorf("accepted bad query: %s", s)
		}
	}
}

func TestParseMatchFigure3(t *testing.T) {
	q, err := ParseMatch(`
		GIVEN DensityBasedCluster input
		SELECT DensityBasedClusters FROM History
		WHERE Distance <= 0.2`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Target != "input" || q.Threshold != 0.2 || q.HasWeights || q.PositionSensitive || q.Limit != 0 {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseMatchFull(t *testing.T) {
	q, err := ParseMatch(`GIVEN DensityBasedClusters c42
		SELECT DensityBasedClusters FROM History
		WHERE Distance <= 0.3
		WITH WEIGHTS volume = 0.4, status = 0.2, density = 0.2, connectivity = 0.2
		POSITION SENSITIVE
		LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Target != "c42" || !q.HasWeights || !q.PositionSensitive || q.Limit != 3 {
		t.Fatalf("parsed %+v", q)
	}
	if q.Weights != [4]float64{0.4, 0.2, 0.2, 0.2} {
		t.Fatalf("weights %v", q.Weights)
	}
}

func TestParseMatchNumericTarget(t *testing.T) {
	// An integer archive id is a valid cluster reference (how sgsd's
	// /match endpoint names archived clusters).
	q, err := ParseMatch(`GIVEN DensityBasedCluster 17
		SELECT DensityBasedClusters FROM History
		WHERE Distance <= 0.25 LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Target != "17" || q.Threshold != 0.25 || q.Limit != 5 {
		t.Fatalf("parsed %+v", q)
	}
	// A fractional reference is neither identifier nor id.
	if _, err := ParseMatch(`GIVEN DensityBasedCluster 1.5
		SELECT DensityBasedClusters FROM History WHERE Distance <= 0.2`); err == nil {
		t.Error("fractional cluster reference accepted")
	}
}

func TestParseMatchErrors(t *testing.T) {
	bad := []string{
		"GIVEN DensityBasedCluster input SELECT DensityBasedClusters FROM History WHERE Distance <= 2",
		"GIVEN DensityBasedCluster input SELECT DensityBasedClusters FROM History WHERE Distance = 0.2",
		"GIVEN DensityBasedCluster input SELECT DensityBasedClusters FROM History",
		"GIVEN DensityBasedCluster input SELECT DensityBasedClusters FROM History WHERE Distance <= 0.2 LIMIT 0",
		"GIVEN DensityBasedCluster input SELECT DensityBasedClusters FROM History WHERE Distance <= 0.2 WITH WEIGHTS volume = 1",
	}
	for _, s := range bad {
		if _, err := ParseMatch(s); err == nil {
			t.Errorf("accepted bad query: %s", s)
		}
	}
}

func TestParseDispatch(t *testing.T) {
	v, err := Parse("GIVEN DensityBasedCluster x SELECT DensityBasedClusters FROM History WHERE Distance <= 0.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.(*MatchQuery); !ok {
		t.Fatalf("dispatch returned %T", v)
	}
	if _, err := ParseMatch("DETECT DensityBasedClusters FROM s USING theta_range = 1 AND theta_cnt = 1 IN WINDOWS WITH win = 2 AND slide = 1"); err == nil {
		t.Error("ParseMatch accepted DETECT")
	}
	if _, err := ParseCluster("GIVEN DensityBasedCluster x SELECT DensityBasedClusters FROM History WHERE Distance <= 0.1"); err == nil {
		t.Error("ParseCluster accepted GIVEN")
	}
}

func TestLexerOddities(t *testing.T) {
	// Scientific notation and negative numbers.
	q, err := ParseCluster(`DETECT DensityBasedClusters FROM s
		USING theta_range = 1e-1 AND theta_cnt = 8
		IN WINDOWS WITH win = 10000 AND slide = 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if q.ThetaR != 0.1 {
		t.Fatalf("theta_range = %g", q.ThetaR)
	}
	// Unknown symbol produces an error, not a hang.
	if _, err := Parse("DETECT ; nonsense"); err == nil {
		t.Error("garbage accepted")
	}
	// Keywords are not valid as numbers.
	if _, err := Parse(strings.Repeat("DETECT ", 3)); err == nil {
		t.Error("repeated keywords accepted")
	}
}

func TestParseMatchStanding(t *testing.T) {
	q, err := ParseMatch(`GIVEN DensityBasedCluster 17
		SELECT DensityBasedClusters FROM Stream
		WHERE Distance <= 0.25 POSITION SENSITIVE`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Standing {
		t.Error("FROM Stream did not set Standing")
	}
	if q.Target != "17" || q.Threshold != 0.25 || !q.PositionSensitive {
		t.Errorf("parsed %+v", q)
	}
	h, err := ParseMatch(`GIVEN DensityBasedCluster 17
		SELECT DensityBasedClusters FROM History WHERE Distance <= 0.25`)
	if err != nil {
		t.Fatal(err)
	}
	if h.Standing {
		t.Error("FROM History set Standing")
	}
	// Keywords are case-insensitive, like the rest of the grammar.
	s, err := ParseMatch(`given densitybasedcluster x select densitybasedclusters from stream where distance <= 0.1`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Standing {
		t.Error("lowercase from stream did not set Standing")
	}
}

func TestParseMatchStandingErrors(t *testing.T) {
	bad := []string{
		// LIMIT is meaningless for a standing query.
		"GIVEN DensityBasedCluster 1 SELECT DensityBasedClusters FROM Stream WHERE Distance <= 0.2 LIMIT 3",
		// FROM must name History or Stream.
		"GIVEN DensityBasedCluster 1 SELECT DensityBasedClusters FROM Archive WHERE Distance <= 0.2",
		"GIVEN DensityBasedCluster 1 SELECT DensityBasedClusters FROM WHERE Distance <= 0.2",
	}
	for _, s := range bad {
		if _, err := ParseMatch(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}
